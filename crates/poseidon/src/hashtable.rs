//! The multi-level hash table of memory-block records (§4.4, §5.2).
//!
//! Each sub-heap indexes every block (allocated *and* free) by its user
//! region offset, in a chain of open-addressed levels whose capacities
//! double (`c0 << level`), after F2FS's multi-level design. Lookups and
//! updates are O(1): each level is probed linearly within a fixed window.
//! When every active level's window is full, the caller first
//! defragments (merging free blocks turns records into reusable
//! tombstones) and only then activates the next level; levels whose live
//! count drops to zero are deactivated and hole-punched back to the
//! device (§5.6).

use crate::error::{PoseidonError, Result};
use crate::layout::{ENTRY_SIZE, MAX_LEVELS, PROBE_WINDOW, SH_TABLE_OFF};
use crate::persist::{state, HashEntry};
use crate::session::{OpSession, UndoScope};

/// SplitMix64 mixing for slot hashing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Digest of a record key as folded into its level's identity checksum.
///
/// Each level persists the XOR of the digests of its live record keys
/// (at [`SubCtx::level_sum_off`](crate::persist::SubCtx::level_sum_off)).
/// A key never changes in place — state flips and size rewrites keep the
/// record's offset — so insert and delete are the only maintenance
/// points, and XOR makes them the same operation. The checksum lets an
/// offline audit or `pfsck --repair` tell a genuinely empty level from
/// one whose records (or live count) were destroyed: both look the same
/// through the zeroed count alone.
pub(crate) fn key_digest(key: u64) -> u64 {
    mix(key)
}

/// Home slot of `key` in `level` (level capacities are powers of two).
#[inline]
fn home_slot(key: u64, level: usize, capacity: u64) -> u64 {
    mix(key ^ (level as u64).wrapping_mul(0xA24B_AED4_963E_E407)) & (capacity - 1)
}

/// Device offset of slot `index` in `level` of `op`'s table.
#[inline]
fn slot_off(op: &OpSession<'_>, level: usize, index: u64) -> u64 {
    op.ctx.layout.level_base(op.ctx.sub, level) + index * ENTRY_SIZE
}

/// Looks up the record whose key (block offset) is `key`.
/// Returns the record's device offset and value, or `None`.
pub(crate) fn lookup(op: &OpSession<'_>, key: u64) -> Result<Option<(u64, HashEntry)>> {
    let active = op.active_levels()? as usize;
    for level in 0..active.min(MAX_LEVELS) {
        let capacity = op.ctx.layout.level_capacity(level);
        let start = home_slot(key, level, capacity);
        for i in 0..PROBE_WINDOW.min(capacity) {
            let off = slot_off(op, level, (start + i) & (capacity - 1));
            let entry = op.entry(off)?;
            match entry.state {
                state::EMPTY => break, // key cannot be further in this level
                state::TOMBSTONE => continue,
                _ if entry.offset == key => return Ok(Some((off, entry))),
                _ => continue,
            }
        }
    }
    Ok(None)
}

/// Inserts `entry` (keyed by `entry.offset`), reusing tombstones.
///
/// If every active level's probe window is full and `allow_activate` is
/// set, the next level is activated *inside the scope* (its area is
/// hole-punched clean first, then `active_levels` and the level count are
/// undo-logged). Returns the record's device offset.
///
/// # Errors
///
/// [`PoseidonError::TableFull`] when no slot is available (callers
/// defragment and retry, per §5.2); [`PoseidonError::Corrupted`] if the
/// key already exists.
pub(crate) fn insert(
    op: &OpSession<'_>,
    scope: &mut UndoScope<'_, '_>,
    entry: HashEntry,
    allow_activate: bool,
) -> Result<u64> {
    let key = entry.offset;
    let active = (op.active_levels()? as usize).min(MAX_LEVELS);
    for level in 0..active {
        let capacity = op.ctx.layout.level_capacity(level);
        let start = home_slot(key, level, capacity);
        let mut reusable = None;
        let mut target = None;
        for i in 0..PROBE_WINDOW.min(capacity) {
            let off = slot_off(op, level, (start + i) & (capacity - 1));
            let existing = op.entry(off)?;
            match existing.state {
                state::EMPTY => {
                    target = Some(reusable.unwrap_or(off));
                    break;
                }
                // A tombstone is dead no matter what stale key it still
                // carries — it must never reach the duplicate check below
                // (a merged-away record's offset legitimately comes back
                // when the merged block is re-split). Keep this arm
                // unguarded: a `reusable.is_none()` match guard would let
                // later tombstones fall through to the duplicate arm.
                state::TOMBSTONE => reusable = reusable.or(Some(off)),
                _ if existing.offset == key => {
                    return Err(PoseidonError::Corrupted("duplicate block record insert"));
                }
                _ => {}
            }
        }
        // The whole window was scanned (no EMPTY): a tombstone is still a
        // valid target because no duplicate was found in the window.
        if let Some(off) = target.or(reusable) {
            write_entry(scope, off, &entry)?;
            bump_level_count(op, scope, level, 1)?;
            bump_level_sum(op, scope, level, key)?;
            return Ok(off);
        }
    }
    if allow_activate && active < MAX_LEVELS {
        let level = active;
        // Scrub any residue from a previous activation of this level (a
        // deactivation whose punch was lost in a crash). Punching is
        // durable and harmless even if this scope later aborts: the
        // level is inactive and its live count is zero either way.
        let level_base = op.ctx.layout.level_base(op.ctx.sub, level);
        op.ctx.dev.punch_hole(level_base, op.ctx.layout.level_capacity(level) * ENTRY_SIZE)?;
        scope.log_and_write_pod(op.ctx.active_levels_off(), &((active + 1) as u64))?;
        scope.log_and_write_pod(op.ctx.level_count_off(level), &0u64)?;
        scope.log_and_write_pod(op.ctx.level_sum_off(level), &0u64)?;
        let capacity = op.ctx.layout.level_capacity(level);
        let off = slot_off(op, level, home_slot(key, level, capacity));
        write_entry(scope, off, &entry)?;
        bump_level_count(op, scope, level, 1)?;
        bump_level_sum(op, scope, level, key)?;
        return Ok(off);
    }
    Err(PoseidonError::TableFull)
}

/// Overwrites the record at `entry_off` through the scope.
pub(crate) fn write_entry(scope: &mut UndoScope<'_, '_>, entry_off: u64, entry: &HashEntry) -> Result<()> {
    scope.log_and_write_pod(entry_off, entry)
}

/// Tombstones the record at `entry_off` and decrements its level's live
/// count.
pub(crate) fn delete(op: &OpSession<'_>, scope: &mut UndoScope<'_, '_>, entry_off: u64) -> Result<()> {
    let level = level_of(op, entry_off);
    let mut entry = op.entry(entry_off)?;
    let key = entry.offset;
    entry.state = state::TOMBSTONE;
    entry.next_free = 0;
    entry.prev_free = 0;
    write_entry(scope, entry_off, &entry)?;
    bump_level_count(op, scope, level, -1)?;
    bump_level_sum(op, scope, level, key)
}

/// The level containing the record at device offset `entry_off`.
pub(crate) fn level_of(op: &OpSession<'_>, entry_off: u64) -> usize {
    let table_base = op.ctx.meta_base() + SH_TABLE_OFF;
    debug_assert!(entry_off >= table_base);
    let index = (entry_off - table_base) / ENTRY_SIZE;
    // Levels 0..l hold c0 * (2^l - 1) entries; find l with
    // c0 * (2^l - 1) <= index < c0 * (2^(l+1) - 1).
    let c0 = op.ctx.layout.c0;
    let mut level = 0;
    while c0 * ((1 << (level + 1)) - 1) <= index {
        level += 1;
        debug_assert!(level < MAX_LEVELS);
    }
    level
}

/// Toggles `key` into/out of `level`'s identity checksum (XOR is its own
/// inverse, so insert and delete share this).
fn bump_level_sum(op: &OpSession<'_>, scope: &mut UndoScope<'_, '_>, level: usize, key: u64) -> Result<()> {
    let off = op.ctx.level_sum_off(level);
    let sum: u64 = op.read_pod(off)?;
    scope.log_and_write_pod(off, &(sum ^ key_digest(key)))
}

fn bump_level_count(
    op: &OpSession<'_>,
    scope: &mut UndoScope<'_, '_>,
    level: usize,
    delta: i64,
) -> Result<()> {
    let off = op.ctx.level_count_off(level);
    let count: u64 = op.read_pod(off)?;
    let updated =
        count.checked_add_signed(delta).ok_or(PoseidonError::Corrupted("hash-level live count underflow"))?;
    scope.log_and_write_pod(off, &updated)
}

/// Collects the FREE records sitting in `key`'s probe window of every
/// active level — the candidate set for probe-window defragmentation
/// (§5.4, trigger 2). Cache-managed records are skipped: they are
/// withdrawn from the free lists and must not be merged.
pub(crate) fn free_in_windows(op: &OpSession<'_>, key: u64) -> Result<Vec<(u64, HashEntry)>> {
    let active = (op.active_levels()? as usize).min(MAX_LEVELS);
    let mut found = Vec::new();
    for level in 0..active {
        let capacity = op.ctx.layout.level_capacity(level);
        let start = home_slot(key, level, capacity);
        for i in 0..PROBE_WINDOW.min(capacity) {
            let off = slot_off(op, level, (start + i) & (capacity - 1));
            let entry = op.entry(off)?;
            match entry.state {
                state::EMPTY => break,
                state::FREE if entry.flags & crate::persist::FLAG_CACHED == 0 => found.push((off, entry)),
                _ => {}
            }
        }
    }
    Ok(found)
}

/// Whether the top active level is empty, i.e. whether [`shrink`] would
/// deactivate anything. Two view reads — cheap enough to probe on every
/// free.
pub(crate) fn shrink_would_release(op: &OpSession<'_>) -> Result<bool> {
    let active = op.active_levels()? as usize;
    if active <= 1 {
        return Ok(false);
    }
    let count: u64 = op.read_pod(op.ctx.level_count_off(active - 1))?;
    Ok(count == 0)
}

/// Deactivates trailing levels whose live count is zero, hole-punching
/// their slots back to the device (§5.6). Runs its own scopes; safe to
/// call whenever no scope is open on this sub-heap.
pub(crate) fn shrink(op: &OpSession<'_>) -> Result<u64> {
    let mut released = 0;
    while let Some(bytes) = shrink_one(op)? {
        released += bytes;
    }
    Ok(released)
}

/// Deactivates the top active level if (and only if) its live count is
/// zero — one bounded unit of table shrinking: one two-fence commit plus
/// one hole punch. Returns the bytes released, or `None` when the top
/// level is still populated. [`shrink`] is this in a loop; the
/// maintenance engine calls it directly so each level retired counts
/// one unit against its budget.
pub(crate) fn shrink_one(op: &OpSession<'_>) -> Result<Option<u64>> {
    let active = op.active_levels()? as usize;
    if active <= 1 {
        return Ok(None);
    }
    let top = active - 1;
    let count: u64 = op.read_pod(op.ctx.level_count_off(top))?;
    if count != 0 {
        return Ok(None);
    }
    // Commit the deactivation first; only then punch. A crash in
    // between wastes space but loses nothing.
    let mut scope = op.undo()?;
    scope.log_and_write_pod(op.ctx.active_levels_off(), &(top as u64))?;
    scope.commit()?;
    Ok(Some(op.ctx.dev.punch_hole(
        op.ctx.layout.level_base(op.ctx.sub, top),
        op.ctx.layout.level_capacity(top) * ENTRY_SIZE,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::persist::SubCtx;
    use crate::session::UndoScope;
    use pmem::{DeviceConfig, PmemDevice};

    /// Builds a device + layout with an initialised (zeroed) sub-heap 0
    /// whose header has `active_levels = 1`.
    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        dev.write_pod(ctx.active_levels_off(), &1u64).unwrap();
        (dev, layout)
    }

    fn entry(key: u64) -> HashEntry {
        HashEntry { offset: key, size: 64, state: state::ALLOC, ..Default::default() }
    }

    fn with_scope<R>(op: &OpSession<'_>, f: impl FnOnce(&mut UndoScope<'_, '_>) -> Result<R>) -> Result<R> {
        let mut s = op.undo()?;
        let r = f(&mut s)?;
        s.commit()?;
        Ok(r)
    }

    #[test]
    fn insert_then_lookup() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let off = with_scope(&op, |s| insert(&op, s, entry(4096), false)).unwrap();
        let (found_off, found) = lookup(&op, 4096).unwrap().unwrap();
        assert_eq!(found_off, off);
        assert_eq!(found.offset, 4096);
        assert_eq!(found.state, state::ALLOC);
        assert!(lookup(&op, 8192).unwrap().is_none());
    }

    #[test]
    fn delete_tombstones_and_lookup_probes_past() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        // Insert several keys, delete one, others must stay findable even
        // if they shared a probe chain with the deleted one.
        let keys: Vec<u64> = (0..20).map(|i| i * 32).collect();
        let offs: Vec<u64> =
            keys.iter().map(|&k| with_scope(&op, |s| insert(&op, s, entry(k), false)).unwrap()).collect();
        with_scope(&op, |s| delete(&op, s, offs[7])).unwrap();
        assert!(lookup(&op, keys[7]).unwrap().is_none());
        for (i, &k) in keys.iter().enumerate() {
            if i != 7 {
                assert!(lookup(&op, k).unwrap().is_some(), "key {k} lost");
            }
        }
    }

    #[test]
    fn tombstones_are_reused() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let off = with_scope(&op, |s| insert(&op, s, entry(64), false)).unwrap();
        with_scope(&op, |s| delete(&op, s, off)).unwrap();
        let off2 = with_scope(&op, |s| insert(&op, s, entry(64), false)).unwrap();
        assert_eq!(off, off2, "tombstoned home slot should be reused");
    }

    #[test]
    fn duplicate_insert_is_corruption() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        with_scope(&op, |s| insert(&op, s, entry(96), false)).unwrap();
        let r = with_scope(&op, |s| insert(&op, s, entry(96), false));
        assert!(matches!(r, Err(PoseidonError::Corrupted(_))));
    }

    #[test]
    fn second_tombstone_with_matching_stale_key_is_not_a_duplicate() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        // Two keys whose home slots collide in level 0 (away from the
        // wrap point so the probe order below is the slot order).
        let c0 = layout.c0;
        let (a, b) = (1..100_000u64)
            .map(|i| i * 32)
            .filter(|&k| home_slot(k, 0, c0) < c0 - PROBE_WINDOW)
            .scan(std::collections::HashMap::new(), |seen, k| {
                Some(seen.insert(home_slot(k, 0, c0), k).map(|first| (first, k)))
            })
            .flatten()
            .next()
            .expect("no colliding key pair found");
        let off_a = with_scope(&op, |s| insert(&op, s, entry(a), false)).unwrap();
        let off_b = with_scope(&op, |s| insert(&op, s, entry(b), false)).unwrap();
        assert_eq!(off_b, off_a + ENTRY_SIZE, "b probes to the next slot");
        with_scope(&op, |s| delete(&op, s, off_a)).unwrap();
        with_scope(&op, |s| delete(&op, s, off_b)).unwrap();
        // Re-inserting b walks past a's tombstone (captured for reuse)
        // and then meets its own stale tombstone — a dead record that
        // must not read as a duplicate insert.
        let off_b2 = with_scope(&op, |s| insert(&op, s, entry(b), false)).unwrap();
        assert_eq!(off_b2, off_a, "first tombstone in the window is reused");
        assert!(lookup(&op, b).unwrap().is_some());
        assert!(lookup(&op, a).unwrap().is_none());
    }

    #[test]
    fn level_count_tracks_live_entries() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let off = with_scope(&op, |s| insert(&op, s, entry(128), false)).unwrap();
        assert_eq!(dev.read_pod::<u64>(op.ctx.level_count_off(0)).unwrap(), 1);
        with_scope(&op, |s| delete(&op, s, off)).unwrap();
        assert_eq!(dev.read_pod::<u64>(op.ctx.level_count_off(0)).unwrap(), 0);
    }

    #[test]
    fn window_exhaustion_without_activation_is_table_full() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        // Fill level 0 completely (c0 entries), then one more insert with
        // allow_activate = false must fail.
        let mut inserted = 0u64;
        let mut key = 0u64;
        while inserted < layout.c0 {
            match with_scope(&op, |s| insert(&op, s, entry(key), false)) {
                Ok(_) => inserted += 1,
                Err(PoseidonError::TableFull) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            key += 32;
        }
        // Keep probing keys until one fails.
        let r = loop {
            let r = with_scope(&op, |s| insert(&op, s, entry(key), false));
            key += 32;
            if r.is_err() || key > layout.c0 * 64 {
                break r;
            }
        };
        assert!(matches!(r, Err(PoseidonError::TableFull)));
    }

    #[test]
    fn activation_extends_and_lookup_spans_levels() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        // Fill until activation is needed, with activation allowed.
        let total = layout.c0 + 8;
        for i in 0..total {
            with_scope(&op, |s| insert(&op, s, entry(i * 32), true)).unwrap();
        }
        assert!(op.active_levels().unwrap() >= 2);
        for i in 0..total {
            assert!(lookup(&op, i * 32).unwrap().is_some(), "key {} lost after activation", i * 32);
        }
    }

    #[test]
    fn shrink_deactivates_empty_top_level() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let total = layout.c0 + 8;
        let mut offs = Vec::new();
        for i in 0..total {
            offs.push(with_scope(&op, |s| insert(&op, s, entry(i * 32), true)).unwrap());
        }
        let grown = op.active_levels().unwrap();
        assert!(grown >= 2);
        assert!(!shrink_would_release(&op).unwrap());
        // Delete everything in the upper levels.
        for &off in &offs {
            if level_of(&op, off) > 0 {
                with_scope(&op, |s| delete(&op, s, off)).unwrap();
            }
        }
        assert!(shrink_would_release(&op).unwrap());
        let released = shrink(&op).unwrap();
        assert_eq!(op.active_levels().unwrap(), 1);
        assert!(!shrink_would_release(&op).unwrap());
        // Level 1 spans at least one 2 MiB chunk only for big tables; just
        // check shrink reported monotonically.
        let _ = released;
        // Level-0 entries are still there.
        for &off in &offs {
            if level_of(&op, off) == 0 {
                let e = op.entry(off).unwrap();
                assert_eq!(e.state, state::ALLOC);
            }
        }
    }

    #[test]
    fn level_of_maps_bases_correctly() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        for level in 0..MAX_LEVELS {
            let base = layout.level_base(0, level);
            assert_eq!(level_of(&op, base), level);
            let last = base + (layout.level_capacity(level) - 1) * ENTRY_SIZE;
            assert_eq!(level_of(&op, last), level);
        }
    }

    #[test]
    fn free_in_windows_reports_free_records() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let mut e = entry(256);
        e.state = state::FREE;
        with_scope(&op, |s| insert(&op, s, e, false)).unwrap();
        let found = free_in_windows(&op, 256).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.offset, 256);
    }
}
