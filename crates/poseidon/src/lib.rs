//! # Poseidon — a safe, fast and scalable persistent memory allocator
//!
//! Reproduction of *Poseidon* (Demeri et al., Middleware '20): a
//! persistent memory allocator that is the first to guarantee **complete
//! heap-metadata protection** while remaining fast and manycore-scalable.
//! Its three pillars, all implemented here:
//!
//! * **Per-CPU sub-heaps** (§4.1) — each CPU allocates from its own
//!   sub-heap with its own lock, logs, buddy lists and block table, placed
//!   on the CPU's NUMA node. No global structures on the hot path.
//! * **Fully segregated, MPK-protected metadata** (§4.2–§4.3) — metadata
//!   lives in its own page-aligned region, tagged with an Intel MPK
//!   protection key and writable only between the `wrpkru` pair that
//!   brackets each allocator operation, and only for the executing
//!   thread. Heap overflows, wild stores, and cross-thread bugs get a
//!   protection fault instead of silently corrupting allocation state.
//! * **O(1) block tracking** (§4.4) — a multi-level hash table records
//!   every allocated *and* free block, validating each `free` (rejecting
//!   double/invalid frees) and backing the buddy free lists, in constant
//!   time regardless of heap size.
//!
//! Crash consistency comes from **undo logging** for every operation and
//! **micro logging** for transactional allocation (§4.5), both replayed
//! idempotently on load (§5.8).
//!
//! Uncorrectable media errors degrade gracefully instead of failing the
//! heap: load-time recovery *quarantines* poisoned free blocks (and, when
//! a sub-heap's metadata itself is damaged, the whole sub-heap) while the
//! rest of the heap keeps allocating, and the offline [`repair`] pass
//! (exposed as `pfsck --repair`) scrubs the poison and rebuilds the
//! damaged metadata. Faults that strike *while serving* are handled
//! online: the operation aborts through its undo log, the damaged unit is
//! live-quarantined persistently, allocations fail over to healthy
//! sub-heaps, and a budgeted background scrubber
//! ([`PoseidonHeap::scrub_step`]) promotes latent poison to quarantine
//! before a user thread trips on it — see [`PoseidonHeap::health`].
//!
//! This implementation runs on the [`pmem`] simulated-NVMM substrate and
//! the [`mpk`] simulated protection keys (see those crates and `DESIGN.md`
//! for the substitution rationale); the allocator logic itself is exactly
//! the paper's design.
//!
//! # Quickstart
//!
//! ```
//! use poseidon::{HeapConfig, PoseidonHeap};
//! use pmem::{DeviceConfig, PmemDevice};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), poseidon::PoseidonError> {
//! let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
//! let heap = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2))?;
//!
//! // Allocate, write through the device, persist, and anchor at the root.
//! let ptr = heap.alloc(1024)?;
//! let raw = heap.raw_offset(ptr)?;
//! heap.device().write(raw, b"durable bytes")?;
//! heap.device().persist(raw, 13)?;
//! heap.set_root(ptr)?;
//!
//! // Transactional allocation: all-or-nothing across a crash.
//! let a = heap.tx_alloc(64, false)?;
//! let b = heap.tx_alloc(64, true)?; // is_end = true commits
//!
//! heap.free(a)?;
//! heap.free(b)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod backend;
mod buddy;
mod defrag;
mod error;
mod frontend;
#[doc(hidden)]
pub mod fuzz;
mod hashtable;
mod heap;
mod hugeregion;
mod layout;
mod maintenance;
mod microlog;
mod nvmptr;
mod persist;
mod quarantine;
mod recovery;
mod repair;
mod selfheal;
mod session;
mod subheap;
mod superblock;
mod undo;

pub use error::{OpKind, PoseidonError, Result};
pub use frontend::CacheConfig;
pub use heap::{GrowReport, HeapConfig, HeapOpStats, PoseidonHeap};
pub use hugeregion::HugeAudit;
pub use layout::{
    class_for_size, class_size, Epoch, HeapLayout, Region, MAX_EPOCHS, MAX_SUBHEAPS, MIN_BLOCK, NUM_CLASSES,
};
pub use maintenance::{ClassFrag, FragmentationReport, HugeFrag, MaintStep, SubheapFrag};
pub use nvmptr::{NvmPtr, MAX_OFFSET};
pub use recovery::RecoveryReport;
pub use repair::{repair, RepairReport};
pub use selfheal::{HeapHealth, ScrubStep};
pub use subheap::SubheapAudit;
