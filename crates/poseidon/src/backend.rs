//! Persistent slow path: undo-logged buddy allocation behind the cache.
//!
//! The methods here are the media-touching half of the allocator split
//! introduced with the transient caching layer ([`crate::frontend`]).
//! Every path below opens an [`crate::session::OpSession`] (sub-heap
//! lock + MPK write window + metadata validation) and commits through
//! the two-fence undo protocol — exactly the PR-4 cost model. The
//! frontend calls in here only on cache misses, refills, drains and
//! publishes; uncacheable sizes come straight through.

use std::sync::atomic::Ordering;

use crate::error::{PoseidonError, Result};
use crate::hashtable;
use crate::heap::PoseidonHeap;
use crate::hugeregion::{self, HUGE_SUBHEAP};
use crate::layout::class_for_size;
use crate::nvmptr::NvmPtr;
use crate::subheap;

impl PoseidonHeap {
    /// Returns `preferred` unless that sub-heap is quarantined, in which
    /// case the nearest healthy neighbour (mod scan) serves instead —
    /// the routing half of allocation failover. When every sub-heap is
    /// condemned the typed exhaustion error says so.
    pub(crate) fn healthy_sub(&self, preferred: u16) -> Result<u16> {
        let n = self.layout.num_subheaps();
        for step in 0..n {
            let sub = (preferred + step) % n;
            if !self.slots[sub as usize].quarantined.load(Ordering::Acquire) {
                return Ok(sub);
            }
        }
        Err(PoseidonError::AllFailed { tried: n })
    }

    /// Allocates from a specific sub-heap through the full persistent
    /// path. `micro` optionally records the new block in a transaction's
    /// micro log within the same undo scope.
    pub(crate) fn alloc_on(&self, sub: u16, size: u64, micro: Option<(u64, usize)>) -> Result<NvmPtr> {
        if self.slots[sub as usize].quarantined.load(Ordering::Acquire) {
            return Err(PoseidonError::SubheapQuarantined { subheap: sub });
        }
        if size == 0 {
            return Err(PoseidonError::ZeroSize);
        }
        if size > self.layout.max_alloc() {
            // Beyond every buddy class: served by the huge-object region
            // (page-granular extents) under the same pointer surface.
            return self.huge_alloc(sub, size, micro);
        }
        let (class, _rounded) = class_for_size(size)?;
        self.ensure_subheap(sub)?;
        let op = self.begin_op(sub)?;
        // Note: no table-shrink probe here. Allocation only ever *adds*
        // records, so the top level cannot become empty on this path; the
        // probe runs on free and defragment, where levels actually drain.
        let offset = subheap::alloc_block(&op, class, micro)?;
        drop(op);
        self.ops.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(NvmPtr::new(self.heap_id, sub, offset))
    }

    /// Allocates an extent from the huge-object region.
    fn huge_alloc(&self, sub: u16, size: u64, micro: Option<(u64, usize)>) -> Result<NvmPtr> {
        if self.layout.huge_data_size() == 0 {
            return Err(PoseidonError::TooLarge {
                requested: size,
                subheap_max: self.layout.max_alloc(),
                huge_remaining: 0,
            });
        }
        let result = match micro {
            None => hugeregion::alloc(&self.begin_huge()?, size, None),
            Some((heap_id, slot)) => {
                // The micro-log slot lives in the transaction's sub-heap;
                // make sure it exists before mapping the spanning view.
                // Lock order: sb_lock (inside ensure) strictly before the
                // huge lock; the sub lock is never taken on this path —
                // the slot is exclusively claimed via the tx bitmap.
                self.ensure_subheap(sub)?;
                if self.huge_quarantined.load(Ordering::Acquire) {
                    return Err(PoseidonError::SubheapQuarantined { subheap: HUGE_SUBHEAP });
                }
                let pkru = self.write_guard();
                let lock = self.huge_lock.lock();
                let op = hugeregion::HugeOp::spanning(self.huge_ctx(), sub, lock, pkru)?;
                hugeregion::alloc(&op, size, Some(hugeregion::MicroHook { heap_id, sub, slot }))
            }
        };
        let offset = match result {
            Ok(offset) => offset,
            Err(e) => {
                if let PoseidonError::TooLarge { huge_remaining, .. } = e {
                    // The scan just measured the largest free extent —
                    // keep the continuously-exposed figure fresh and
                    // signal pressure so maintenance (and growth
                    // policies watching it) react before the next miss.
                    self.note_huge_largest_free(huge_remaining);
                    self.note_space_pressure();
                }
                return Err(e);
            }
        };
        self.ops.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(NvmPtr::new(self.heap_id, HUGE_SUBHEAP, offset))
    }

    /// Frees a huge-region extent.
    pub(crate) fn free_huge(&self, ptr: NvmPtr) -> Result<()> {
        match hugeregion::free(&self.begin_huge()?, ptr.offset()) {
            Ok(_) => {
                self.note_free();
                Ok(())
            }
            Err(e @ (PoseidonError::InvalidFree { .. } | PoseidonError::DoubleFree { .. })) => {
                self.note_rejected_free();
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Frees a buddy block through the full persistent path (undo-logged
    /// state flip, merge cascade, table-shrink probe).
    pub(crate) fn free_slow(&self, ptr: NvmPtr) -> Result<()> {
        let sub = ptr.subheap();
        if !self.slots[sub as usize].created.load(Ordering::Acquire) {
            return Err(PoseidonError::InvalidFree { offset: ptr.offset() });
        }
        if self.slots[sub as usize].quarantined.load(Ordering::Acquire) {
            return Err(PoseidonError::SubheapQuarantined { subheap: sub });
        }
        let op = self.begin_op(sub)?;
        match subheap::free_block(&op, ptr.offset()) {
            Ok(outcome) => {
                // Frees drain table levels; probe (two view reads) and
                // shrink here so the alloc hot path never pays for it.
                if hashtable::shrink_would_release(&op)? {
                    hashtable::shrink(&op)?;
                }
                drop(op);
                if outcome.quarantined {
                    // The block went to quarantine, not a free list —
                    // keep the live health ledger in step with the
                    // durable record state so `health()` and the audit
                    // agree (the scrubber never revisits it: it is no
                    // longer FREE).
                    self.health.blocks_quarantined.fetch_add(1, Ordering::Relaxed);
                }
                self.note_free();
                Ok(())
            }
            Err(e @ (PoseidonError::InvalidFree { .. } | PoseidonError::DoubleFree { .. })) => {
                self.note_rejected_free();
                Err(e)
            }
            Err(e) => Err(e),
        }
    }
}
