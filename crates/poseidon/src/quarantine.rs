//! Heap quarantine: isolating blocks hit by uncorrectable media errors.
//!
//! Real persistent memory develops bad lines; an allocator that hands a
//! poisoned block back to the application turns a contained media error
//! into silent data corruption. Poseidon therefore *quarantines*: a block
//! whose user bytes overlap a poisoned line is moved to the
//! [`state::QUARANTINED`] record state — pulled out of its buddy free
//! list (if it was free), never considered for allocation or merging, and
//! accounted separately by the audit. Quarantined blocks stay in the hash
//! table so probe chains remain intact and the bytes they cover remain
//! claimed (conservation: every user byte is FREE, ALLOC, or
//! QUARANTINED).
//!
//! Quarantine is applied at two points:
//!
//! * **Recovery** ([`isolate_poisoned_free_blocks`]) — after the logs of
//!   a sub-heap replay cleanly, its free blocks are checked against the
//!   device's scrub list and poisoned ones are withdrawn.
//! * **Free** — `free_block` routes a block overlapping poison straight
//!   to QUARANTINED instead of the free list (see `subheap.rs`).
//!
//! Sub-heaps whose *metadata* is poisoned cannot be trusted at all and
//! are quarantined wholesale by recovery (a volatile per-sub flag in the
//! heap); `pfsck --repair` is the escape hatch for both granularities.

use pmem::PoisonRange;

use crate::buddy;
use crate::error::Result;
use crate::layout::{ENTRY_SIZE, MAX_LEVELS};
use crate::persist::{state, FLAG_CACHED};
use crate::session::OpSession;

/// Whether any of `ranges` overlaps `[offset, offset + len)`.
pub(crate) fn overlaps_any(ranges: &[PoisonRange], offset: u64, len: u64) -> bool {
    ranges.iter().any(|r| r.overlaps(offset, len))
}

/// Scans every active hash-table level of `op`'s sub-heap and quarantines
/// FREE blocks whose user bytes overlap a poisoned range: each is
/// unlinked from its buddy list and rewritten as [`state::QUARANTINED`],
/// one undo scope per block (so a crash mid-scan leaves a consistent heap
/// and a re-run finishes the job). Returns `(blocks, bytes)` quarantined.
///
/// The caller has already established that the sub-heap's *metadata*
/// region is poison-free — table reads here are expected to succeed.
///
/// Cache-withdrawn records (`FREE | FLAG_CACHED`) are skipped: they are
/// already unlinked from their buddy list (unlinking them again would
/// clobber the real list head), and the transient cache owns them — the
/// live healing path drains the cache back to the free lists *before*
/// calling this, so only blocks checked out to the application (whose
/// poison surfaces as a typed read error) stay flagged.
pub(crate) fn isolate_poisoned_free_blocks(op: &OpSession<'_>, poison: &[PoisonRange]) -> Result<(u64, u64)> {
    if poison.is_empty() {
        return Ok((0, 0));
    }
    let user_base = op.ctx.user_base();
    let mut blocks = 0u64;
    let mut bytes = 0u64;
    let active = (op.active_levels()? as usize).min(MAX_LEVELS);
    for level in 0..active {
        let base = op.ctx.layout.level_base(op.ctx.sub, level);
        for i in 0..op.ctx.layout.level_capacity(level) {
            let rec_off = base + i * ENTRY_SIZE;
            let rec = op.entry(rec_off)?;
            if rec.state != state::FREE
                || rec.flags & FLAG_CACHED != 0
                || !overlaps_any(poison, user_base + rec.offset, rec.size)
            {
                continue;
            }
            let mut scope = op.undo()?;
            buddy::unlink(op, &mut scope, rec_off, &rec)?;
            let mut updated = rec;
            updated.state = state::QUARANTINED;
            updated.next_free = 0;
            updated.prev_free = 0;
            crate::hashtable::write_entry(&mut scope, rec_off, &updated)?;
            scope.commit()?;
            blocks += 1;
            bytes += rec.size;
        }
    }
    Ok((blocks, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::persist::SubCtx;
    use crate::subheap;
    use pmem::{DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        (dev, layout)
    }

    #[test]
    fn poisoned_free_block_is_withdrawn_and_never_reallocated() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        subheap::create(&op, 0).unwrap();
        // Allocate then free a small block so a specific free record
        // exists, then poison one line inside it.
        let (class, size) = crate::layout::class_for_size(64).unwrap();
        let off = subheap::alloc_block(&op, class, None).unwrap();
        subheap::free_block(&op, off).unwrap();
        dev.poison(op.ctx.user_base() + off, 1).unwrap();

        let (blocks, bytes) = isolate_poisoned_free_blocks(&op, &dev.scrub()).unwrap();
        assert_eq!(blocks, 1);
        assert_eq!(bytes, size);
        // Idempotent: a second pass finds nothing FREE to quarantine.
        assert_eq!(isolate_poisoned_free_blocks(&op, &dev.scrub()).unwrap(), (0, 0));

        // The block is out of circulation: its record is QUARANTINED, its
        // class's free list no longer links it, and the audit accounts
        // for it.
        let (rec_off, rec) = crate::hashtable::lookup(&op, off).unwrap().unwrap();
        assert_eq!(rec.state, state::QUARANTINED);
        assert!(!buddy::collect(&op, class).unwrap().contains(&rec_off));
        let audit = subheap::audit(&op).unwrap();
        assert_eq!(audit.quarantined_blocks, 1);
        assert_eq!(audit.quarantined_bytes, size);
    }

    #[test]
    fn clean_device_is_a_cheap_no_op() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        subheap::create(&op, 0).unwrap();
        assert_eq!(isolate_poisoned_free_blocks(&op, &dev.scrub()).unwrap(), (0, 0));
    }
}
