//! Error types of the Poseidon allocator.

use pmem::PmemError;

/// Which allocator path was executing when a media error was detected.
///
/// Carried inside [`PoseidonError::MediaError`] so callers (and the
/// self-healing layer) can distinguish an alloc-path hit — where
/// transparent failover to another sub-heap is possible — from a
/// free-path or transaction hit, where the caller still holds a pointer
/// into the damaged unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An allocation path (buddy, cache refill, or huge-region extent).
    Alloc,
    /// A free path (slow free, cache drain, or huge-region free).
    Free,
    /// A transactional operation (`tx_alloc`, ptx commit/abort).
    Tx,
    /// Load-time recovery or the offline repair pass.
    Recovery,
    /// The background scrubber's proactive walk.
    Scrub,
    /// Unattributed: the error was converted straight from the device
    /// layer without path context (the `From<PmemError>` fallback).
    Unknown,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OpKind::Alloc => "alloc",
            OpKind::Free => "free",
            OpKind::Tx => "tx",
            OpKind::Recovery => "recovery",
            OpKind::Scrub => "scrub",
            OpKind::Unknown => "unknown",
        })
    }
}

/// Errors returned by [`PoseidonHeap`](crate::PoseidonHeap) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoseidonError {
    /// The sub-heap cannot satisfy the request, even after
    /// defragmentation.
    NoSpace {
        /// The requested size in bytes.
        requested: u64,
    },
    /// The request exceeds both what a single sub-heap can ever hold and
    /// what the huge-object region can currently satisfy.
    TooLarge {
        /// The requested size in bytes.
        requested: u64,
        /// The largest size a sub-heap can serve.
        subheap_max: u64,
        /// The largest contiguous extent the huge region can serve right
        /// now (0 when the device has no huge region).
        huge_remaining: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// The pointer passed to `free` does not name any block this heap ever
    /// allocated (§4.7: *invalid free* — the request is rejected before it
    /// can corrupt metadata).
    InvalidFree {
        /// The offending pointer's sub-heap-relative offset.
        offset: u64,
    },
    /// The pointer passed to `free` names a block that is already free
    /// (§4.7: *double free* — rejected).
    DoubleFree {
        /// The offending pointer's sub-heap-relative offset.
        offset: u64,
    },
    /// The pointer belongs to a different heap (its heap id does not match).
    WrongHeap {
        /// Heap id embedded in the pointer.
        pointer_heap: u64,
        /// Heap id of the heap the call was made on.
        this_heap: u64,
    },
    /// The pointer's sub-heap id is out of range for this heap.
    BadSubheap {
        /// Sub-heap id embedded in the pointer.
        subheap: u16,
    },
    /// The multi-level hash table is full at every level; the heap holds
    /// more live blocks than its metadata geometry supports.
    TableFull,
    /// A transactional allocation would overflow its micro-log slot;
    /// commit (`is_end = true`) more often.
    TxTooLarge {
        /// Maximum number of allocations per transaction.
        max: usize,
    },
    /// Every micro-log slot of the sub-heap is claimed by an open
    /// transaction; commit or abort one first.
    TxSlotsExhausted {
        /// Number of concurrent transactions a sub-heap supports.
        max: usize,
    },
    /// The transaction already spans a different sub-heap; a single
    /// transaction must stay on the CPU it started on.
    TxCrossesSubheaps {
        /// Sub-heap the transaction started on.
        started_on: u16,
        /// Sub-heap the current call would use.
        current: u16,
    },
    /// An uncorrectable media error: the device reported a poisoned line
    /// while reading allocator state. The rest of the heap stays usable —
    /// recovery quarantines what it cannot read (§ fault model,
    /// DESIGN.md), and `pfsck --repair` can rebuild the metadata around
    /// the poisoned lines.
    MediaError {
        /// Line-aligned device offset of the poisoned line.
        offset: u64,
        /// Which allocator path tripped the error.
        during: OpKind,
    },
    /// The operation targets a sub-heap that recovery quarantined after a
    /// media error; its blocks are frozen until `pfsck --repair` runs.
    SubheapQuarantined {
        /// The quarantined sub-heap.
        subheap: u16,
    },
    /// Allocation failover exhausted every sub-heap: each one is
    /// quarantined after media errors. The pool needs `pfsck --repair`
    /// before it can allocate again (frees of healthy blocks may still
    /// work).
    AllFailed {
        /// Number of sub-heaps that were tried (all of them).
        tried: u16,
    },
    /// The superblock carries a format version this build cannot open —
    /// distinct from [`Corrupted`](Self::Corrupted) so callers can tell a
    /// migration candidate from a damaged image.
    FormatVersion {
        /// The version stamped in the superblock.
        found: u32,
        /// The newest version this build writes (older versions up to
        /// this are migrated in place on open).
        supported: u32,
    },
    /// Persistent state failed a validation check; the heap image is
    /// corrupt or not a Poseidon heap.
    Corrupted(&'static str),
    /// The device geometry cannot host a heap (too small, or more
    /// sub-heaps than space).
    BadGeometry(&'static str),
    /// An underlying device error (out-of-bounds, protection fault, or an
    /// injected crash).
    Device(PmemError),
}

impl std::fmt::Display for PoseidonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoseidonError::NoSpace { requested } => {
                write!(f, "no space for {requested}-byte allocation after defragmentation")
            }
            PoseidonError::TooLarge { requested, subheap_max, huge_remaining } => {
                write!(
                    f,
                    "{requested}-byte allocation exceeds the sub-heap maximum of {subheap_max} \
                     bytes and the huge-region remaining capacity of {huge_remaining} bytes"
                )
            }
            PoseidonError::ZeroSize => f.write_str("zero-byte allocation"),
            PoseidonError::InvalidFree { offset } => {
                write!(f, "invalid free: no block at sub-heap offset {offset:#x}")
            }
            PoseidonError::DoubleFree { offset } => {
                write!(f, "double free: block at sub-heap offset {offset:#x} is already free")
            }
            PoseidonError::WrongHeap { pointer_heap, this_heap } => {
                write!(f, "pointer belongs to heap {pointer_heap:#x}, not {this_heap:#x}")
            }
            PoseidonError::BadSubheap { subheap } => write!(f, "sub-heap id {subheap} out of range"),
            PoseidonError::TableFull => f.write_str("memory-block hash table is full at every level"),
            PoseidonError::TxTooLarge { max } => {
                write!(f, "transaction exceeds micro-log capacity of {max} allocations")
            }
            PoseidonError::TxSlotsExhausted { max } => {
                write!(f, "all {max} concurrent-transaction slots of the sub-heap are in use")
            }
            PoseidonError::TxCrossesSubheaps { started_on, current } => write!(
                f,
                "transaction started on sub-heap {started_on} but this allocation would use sub-heap {current}"
            ),
            PoseidonError::MediaError { offset, during } => {
                write!(f, "uncorrectable media error at device offset {offset:#x} (during {during})")
            }
            PoseidonError::SubheapQuarantined { subheap } => {
                write!(f, "sub-heap {subheap} is quarantined after a media error (run pfsck --repair)")
            }
            PoseidonError::AllFailed { tried } => {
                write!(f, "all {tried} sub-heaps are quarantined after media errors (run pfsck --repair)")
            }
            PoseidonError::FormatVersion { found, supported } => write!(
                f,
                "unsupported on-device format version {found} (this build supports up to {supported})"
            ),
            PoseidonError::Corrupted(why) => write!(f, "corrupt heap image: {why}"),
            PoseidonError::BadGeometry(why) => write!(f, "bad heap geometry: {why}"),
            PoseidonError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for PoseidonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoseidonError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmemError> for PoseidonError {
    fn from(err: PmemError) -> Self {
        match err {
            // Media errors get their own variant: unlike a crash or an
            // out-of-bounds access they are *partial* failures — callers
            // degrade gracefully (quarantine, failover) instead of
            // treating the whole device as gone.
            PmemError::Uncorrectable { offset } => {
                PoseidonError::MediaError { offset, during: OpKind::Unknown }
            }
            other => PoseidonError::Device(other),
        }
    }
}

impl PoseidonError {
    /// Attributes an unattributed media error to `kind`, leaving every
    /// other error (and already-attributed media errors) untouched. The
    /// error-path glue each operation wraps its fallible core with.
    pub(crate) fn attribute(self, kind: OpKind) -> PoseidonError {
        match self {
            PoseidonError::MediaError { offset, during: OpKind::Unknown } => {
                PoseidonError::MediaError { offset, during: kind }
            }
            other => other,
        }
    }
}

/// Shorthand result type for heap operations.
pub type Result<T> = std::result::Result<T, PoseidonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_errors_convert_and_chain() {
        let e: PoseidonError = PmemError::Crashed.into();
        assert!(matches!(e, PoseidonError::Device(PmemError::Crashed)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn uncorrectable_becomes_typed_media_error() {
        let e: PoseidonError = PmemError::Uncorrectable { offset: 0x1c0 }.into();
        assert_eq!(e, PoseidonError::MediaError { offset: 0x1c0, during: OpKind::Unknown });
        assert!(e.to_string().contains("media error"));
        assert!(PoseidonError::SubheapQuarantined { subheap: 3 }.to_string().contains("quarantined"));
    }

    #[test]
    fn media_errors_attribute_to_the_tripping_path() {
        let e: PoseidonError = PmemError::Uncorrectable { offset: 0x1c0 }.into();
        let e = e.attribute(OpKind::Alloc);
        assert_eq!(e, PoseidonError::MediaError { offset: 0x1c0, during: OpKind::Alloc });
        assert!(e.to_string().contains("during alloc"));
        // Already attributed: a later wrapper must not overwrite it.
        assert_eq!(e.attribute(OpKind::Free), e);
        // Non-media errors pass through unchanged.
        let nospace = PoseidonError::NoSpace { requested: 64 };
        assert_eq!(nospace.attribute(OpKind::Alloc), nospace);
        assert!(PoseidonError::AllFailed { tried: 4 }.to_string().contains("all 4 sub-heaps"));
    }

    #[test]
    fn display_mentions_the_problem() {
        assert!(PoseidonError::DoubleFree { offset: 64 }.to_string().contains("double free"));
        assert!(PoseidonError::InvalidFree { offset: 64 }.to_string().contains("invalid free"));
        assert!(PoseidonError::TableFull.to_string().contains("hash table"));
        let too_large =
            PoseidonError::TooLarge { requested: 1 << 30, subheap_max: 1 << 23, huge_remaining: 1 << 24 }
                .to_string();
        assert!(too_large.contains("sub-heap maximum of 8388608"));
        assert!(too_large.contains("huge-region remaining capacity of 16777216"));
    }
}
