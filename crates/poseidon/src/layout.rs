//! Heap geometry: where everything lives on the device.
//!
//! A Poseidon heap is laid out as a superblock followed by `N` contiguous
//! per-CPU sub-heap **metadata** regions, the **huge-region metadata**
//! (extent table + undo log), `N` **user-data** regions, and finally the
//! **huge-object data** region (§4.2 — fully segregated metadata):
//!
//! ```text
//! ┌────────────┬────────┬───┬───────────┬────────┬───┬───────────┐
//! │ superblock │ meta 0 │ … │ huge meta │ user 0 │ … │ huge data │
//! └────────────┴────────┴───┴───────────┴────────┴───┴───────────┘
//! └─────────── MPK-protected ──────────┘ └───── unprotected ─────┘
//! ```
//!
//! The metadata regions are tagged with one MPK key at load time; user
//! regions are never tagged. Every boundary is page-aligned so protection
//! has exactly the granularity the paper requires.
//!
//! # Layout epochs
//!
//! Capacity is a *runtime* property: the geometry above describes **epoch
//! 0**, and every online [`grow`](crate::PoseidonHeap::grow) appends a new
//! epoch occupying the added capacity `[old_capacity, new_capacity)` with
//! the same internal order (new sub-heap metadata regions, then their user
//! regions, then a new huge-data band):
//!
//! ```text
//! ┌─ epoch 0 (create) ────────┬─ epoch 1 (grow) ─────────┬─ epoch 2 … ─┐
//! │ sb │ metas │ users │ huge │ metas │ users │ huge band │             │
//! └───────────────────────────┴──────────────────────────┴─────────────┘
//! ```
//!
//! Every epoch reuses epoch 0's per-sub-heap geometry (`meta_size`,
//! `user_size`, `c0`), so a sub-heap's *internal* offsets are identical no
//! matter which epoch hosts it — only [`meta_base`](HeapLayout::meta_base)
//! and [`user_base`](HeapLayout::user_base) dispatch on the owning epoch.
//! The huge-object region becomes a *logical* space concatenating the
//! per-epoch bands; extents never span a band boundary.
//!
//! The epoch chain lives behind interior mutability so shared `&HeapLayout`
//! references held by concurrent allocating threads observe a grow safely:
//! an epoch is published to the chain before the cached totals
//! ([`capacity`](HeapLayout::capacity),
//! [`num_subheaps`](HeapLayout::num_subheaps)) advance past it.
//!
//! Allocations larger than [`HeapLayout::max_alloc`] bypass the per-CPU
//! sub-heaps entirely and are served from the huge-object region by an
//! extent allocator (first-fit over sorted free extents; see
//! `hugeregion`). On devices too small for the carve-out to be useful the
//! huge region is omitted and over-sized allocations keep failing with
//! `TooLarge`; growth never retrofits a huge region onto such a heap.
//!
//! Each sub-heap's metadata region contains, at fixed offsets: a small
//! header, the buddy-list head/tail arrays, per-level entry counts, the
//! undo-log area, the micro-log area, and finally the multi-level hash
//! table, whose levels double in capacity and are materialised lazily
//! (unused levels cost nothing thanks to the device's sparse store, and
//! emptied levels are hole-punched back, §5.6).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use pmem::PAGE_SIZE;

use crate::error::{PoseidonError, Result};

/// Bytes reserved for the superblock region (header + sub-heap directory +
/// superblock undo log + layout-epoch records).
pub const SB_REGION_SIZE: u64 = 64 * 1024;
/// Offset of the sub-heap directory (one u64 entry per sub-heap).
pub const SB_DIR_OFF: u64 = PAGE_SIZE;
/// Offset of the superblock undo-log area.
pub const SB_UNDO_OFF: u64 = 2 * PAGE_SIZE;
/// Size of the superblock undo-log area.
pub const SB_UNDO_SIZE: u64 = 4 * PAGE_SIZE;
/// Offset of the layout-epoch record array (one
/// [`EpochRecord`](crate::persist::EpochRecord) per epoch).
pub const SB_EPOCHS_OFF: u64 = 6 * PAGE_SIZE;

/// Maximum number of layout epochs a pool can accumulate (64 slots of
/// 64-byte records fill one page of the superblock region).
pub const MAX_EPOCHS: usize = 64;
/// Maximum total sub-heaps across all epochs: the sub-heap directory is a
/// single page of u64 entries.
pub const MAX_SUBHEAPS: usize = (PAGE_SIZE / 8) as usize;

/// log2 of the smallest block size (32 B).
pub const MIN_BLOCK_SHIFT: u32 = 5;
/// Smallest allocatable block size.
pub const MIN_BLOCK: u64 = 1 << MIN_BLOCK_SHIFT;
/// Number of buddy size classes (class `k` holds blocks of `32 << k`
/// bytes); 48 classes cover every representable block.
pub const NUM_CLASSES: usize = 48;
/// Number of hash-table levels (level `l` holds `c0 << l` entries).
pub const MAX_LEVELS: usize = 10;
/// Linear-probing window per level, in slots.
pub const PROBE_WINDOW: u64 = 32;
/// Size of one hash-table entry (one cache line).
pub const ENTRY_SIZE: u64 = 64;

/// Offset of the buddy-list head array (`[u64; NUM_CLASSES]`).
pub const SH_BUDDY_HEADS_OFF: u64 = 0x100;
/// Offset of the buddy-list tail array (`[u64; NUM_CLASSES]`).
pub const SH_BUDDY_TAILS_OFF: u64 = SH_BUDDY_HEADS_OFF + (NUM_CLASSES as u64) * 8;
/// Offset of the per-level live-entry count array (`[u64; MAX_LEVELS]`).
pub const SH_LEVEL_COUNTS_OFF: u64 = 0x400;
/// Offset of the sub-heap undo-log area.
pub const SH_UNDO_OFF: u64 = 0x1000;
/// Size of the sub-heap undo-log area.
pub const SH_UNDO_SIZE: u64 = 0x10000;
/// Offset of the sub-heap micro-log area.
pub const SH_MICRO_OFF: u64 = SH_UNDO_OFF + SH_UNDO_SIZE;
/// The micro log is *per-transaction* (the paper's "per-thread micro
/// log"): the area is divided into slots, one claimed per open
/// transaction, so concurrent transactions sharing a sub-heap commit and
/// abort independently.
pub const MICRO_SLOTS: usize = 32;
/// Bytes per micro-log slot (a count word + padding + the pointers).
pub const MICRO_SLOT_BYTES: u64 = 512;
/// Maximum number of allocations a single transaction can micro-log.
pub const MICRO_LOG_CAPACITY: usize = ((MICRO_SLOT_BYTES - 16) / 16) as usize;
/// Size of the sub-heap micro-log area.
pub const SH_MICRO_SIZE: u64 = MICRO_SLOTS as u64 * MICRO_SLOT_BYTES;
/// Offset of the multi-level hash table.
pub const SH_TABLE_OFF: u64 = SH_MICRO_OFF + SH_MICRO_SIZE;
/// Offset of the per-level entry checksum array (`[u64; MAX_LEVELS]`),
/// maintained alongside the live-entry counts so repair can distinguish a
/// genuinely empty level from one whose records were lost to poison.
pub const SH_LEVEL_SUMS_OFF: u64 = 0x500;

/// Offset of the huge-region undo-log area within the huge metadata region
/// (the first page holds the huge-region header).
pub const HUGE_UNDO_OFF: u64 = PAGE_SIZE;
/// Size of the huge-region undo-log area.
pub const HUGE_UNDO_SIZE: u64 = 0x10000;
/// Offset of the extent table within the huge metadata region.
pub const HUGE_TABLE_OFF: u64 = HUGE_UNDO_OFF + HUGE_UNDO_SIZE;
/// Number of slots in the huge-region extent table.
pub const HUGE_EXTENT_SLOTS: usize = 1024;
/// Bytes per extent record.
pub const EXTENT_RECORD_SIZE: u64 = 32;
/// Bytes of huge-region metadata (header page + undo log + extent table);
/// a multiple of the page size (asserted in tests).
pub const HUGE_META_SIZE: u64 = HUGE_TABLE_OFF + HUGE_EXTENT_SLOTS as u64 * EXTENT_RECORD_SIZE;
/// Fraction of the usable device given to the huge-object data region
/// (one part in `HUGE_REGION_DIVISOR`).
pub const HUGE_REGION_DIVISOR: u64 = 4;
/// Smallest usable capacity (device minus superblock) for which the huge
/// region is carved out at all; below this, every byte goes to sub-heaps.
pub const HUGE_MIN_USABLE: u64 = 16 << 20;

/// One layout epoch: a contiguous capacity range `[base, capacity)` hosting
/// `num_subheaps` sub-heaps (globally numbered from `first_subheap`) and an
/// optional huge-data band. Epoch 0 is the create-time layout; later
/// epochs are appended by online growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Device offset where this epoch's capacity range starts (0 for epoch
    /// 0; the previous total capacity for growth epochs).
    pub base: u64,
    /// Total device capacity once this epoch is committed (the range's
    /// exclusive end).
    pub capacity: u64,
    /// Global index of the first sub-heap this epoch hosts.
    pub first_subheap: u32,
    /// Number of sub-heaps this epoch hosts (0 is legal for a pure
    /// huge-band growth epoch).
    pub num_subheaps: u32,
    /// Device offset of this epoch's huge-data band (meaningless when
    /// `huge_size == 0`).
    pub huge_base: u64,
    /// Bytes of huge-data band in this epoch.
    pub huge_size: u64,
}

impl Epoch {
    /// End of this epoch's sub-heap metadata regions.
    fn metas_end(&self, meta_size: u64) -> u64 {
        self.metas_base() + self.num_subheaps as u64 * meta_size
    }

    /// Start of this epoch's sub-heap metadata regions (epoch 0's sit
    /// after the superblock).
    fn metas_base(&self) -> u64 {
        if self.base == 0 {
            SB_REGION_SIZE
        } else {
            self.base
        }
    }
}

/// Which region of the device an offset falls in; see
/// [`HeapLayout::locate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The superblock region (header, directory, undo log, epoch records).
    Superblock,
    /// Sub-heap metadata (the sub-heap's global index).
    SubMeta(u16),
    /// Sub-heap user data (the sub-heap's global index).
    SubUser(u16),
    /// Huge-region metadata (header, undo log, extent table).
    HugeMeta,
    /// Huge-object data; carries the *logical* huge offset.
    HugeData {
        /// Offset within the logical (band-concatenated) huge space.
        logical: u64,
    },
    /// Bytes no region claims (growth remainders smaller than a page).
    Unused,
}

/// One contiguous huge-data band, produced by
/// [`HeapLayout::huge_bands`]. Logical huge offsets `[logical, logical +
/// len)` map to device offsets `[phys, phys + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeBand {
    /// Start of the band in the logical huge space.
    pub logical: u64,
    /// Device offset of the band.
    pub phys: u64,
    /// Band length in bytes.
    pub len: u64,
}

/// Computed geometry of a heap on a particular device.
///
/// The per-sub-heap shape (`meta_size`, `user_size`, `c0`) is fixed at
/// create time and shared by every epoch; the epoch chain itself is
/// interior-mutable so `&HeapLayout` references stay valid across an
/// online [`grow`](crate::PoseidonHeap::grow).
#[derive(Debug)]
pub struct HeapLayout {
    /// Bytes of metadata region per sub-heap (page-aligned).
    pub meta_size: u64,
    /// Bytes of user region per sub-heap (page-aligned).
    pub user_size: u64,
    /// Entries in hash-table level 0 (power of two).
    pub c0: u64,
    /// The epoch chain; slots `[0, epoch_count)` are set, in order.
    epochs: [OnceLock<Epoch>; MAX_EPOCHS],
    /// Number of committed epochs. Stored with `Release` *after* the slot
    /// is set, loaded with `Acquire`.
    epoch_count: AtomicU32,
    /// Cached totals, updated after the epoch publish so a reader that
    /// sees the new total always finds the epoch backing it.
    cached_capacity: AtomicU64,
    cached_subheaps: AtomicU32,
    cached_huge: AtomicU64,
}

impl Clone for HeapLayout {
    fn clone(&self) -> HeapLayout {
        let out = HeapLayout::bare(self.meta_size, self.user_size, self.c0);
        for epoch in self.epochs() {
            out.push_epoch(*epoch).expect("cloning a valid chain cannot overflow it");
        }
        out
    }
}

impl PartialEq for HeapLayout {
    fn eq(&self, other: &HeapLayout) -> bool {
        self.meta_size == other.meta_size
            && self.user_size == other.user_size
            && self.c0 == other.c0
            && self.epochs().eq(other.epochs())
    }
}

impl Eq for HeapLayout {}

impl HeapLayout {
    /// An epochless shell sharing the given per-sub-heap shape.
    fn bare(meta_size: u64, user_size: u64, c0: u64) -> HeapLayout {
        HeapLayout {
            meta_size,
            user_size,
            c0,
            epochs: [const { OnceLock::new() }; MAX_EPOCHS],
            epoch_count: AtomicU32::new(0),
            cached_capacity: AtomicU64::new(0),
            cached_subheaps: AtomicU32::new(0),
            cached_huge: AtomicU64::new(0),
        }
    }

    /// Computes the create-time (epoch 0) layout for a device of
    /// `capacity` bytes hosting `num_subheaps` sub-heaps.
    ///
    /// The hash table is sized so that the sum of all levels holds one
    /// entry per 256 B of user region (tombstone reuse and defragmentation
    /// cover denser small-block populations).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] if the device is too small.
    pub fn compute(capacity: u64, num_subheaps: u16) -> Result<HeapLayout> {
        if num_subheaps == 0 {
            return Err(PoseidonError::BadGeometry("need at least one sub-heap"));
        }
        if num_subheaps as usize > MAX_SUBHEAPS {
            return Err(PoseidonError::BadGeometry("sub-heap count exceeds the directory page"));
        }
        let n = num_subheaps as u64;
        if capacity <= SB_REGION_SIZE {
            return Err(PoseidonError::BadGeometry("device smaller than the superblock region"));
        }
        let usable = capacity - SB_REGION_SIZE;
        // Huge-object carve-out: one part in HUGE_REGION_DIVISOR of the
        // usable space, page-aligned, plus a fixed metadata region — but
        // only when the device is large enough for the region to serve
        // anything a sub-heap cannot.
        let (huge_meta, huge_data_size) = if usable >= HUGE_MIN_USABLE {
            (HUGE_META_SIZE, usable / HUGE_REGION_DIVISOR / PAGE_SIZE * PAGE_SIZE)
        } else {
            (0, 0)
        };
        let per_sub = (usable - huge_meta - huge_data_size) / n;
        let levels_factor = (1u64 << MAX_LEVELS) - 1;
        let total_entries = (per_sub / 256).max(4096);
        let c0 = total_entries.div_ceil(levels_factor).next_power_of_two().max(64);
        let table_bytes = c0 * ENTRY_SIZE * levels_factor;
        let meta_size = (SH_TABLE_OFF + table_bytes).next_multiple_of(PAGE_SIZE);
        if per_sub < meta_size + PAGE_SIZE {
            return Err(PoseidonError::BadGeometry(
                "device too small for the requested sub-heap count (no room for user regions)",
            ));
        }
        let user_size = (per_sub - meta_size) / PAGE_SIZE * PAGE_SIZE;
        let layout = HeapLayout::bare(meta_size, user_size, c0);
        let huge_base = SB_REGION_SIZE + n * meta_size + huge_meta + n * user_size;
        layout
            .push_epoch(Epoch {
                base: 0,
                capacity,
                first_subheap: 0,
                num_subheaps: n as u32,
                huge_base,
                huge_size: huge_data_size,
            })
            .expect("an empty chain has room for epoch 0");
        Ok(layout)
    }

    /// Rebuilds a layout from a persisted epoch chain (load path). The
    /// per-sub-heap shape comes from the superblock header; the chain must
    /// be non-empty and contiguous.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] on an empty, overlong, or
    /// non-contiguous chain.
    pub(crate) fn from_epochs(
        meta_size: u64,
        user_size: u64,
        c0: u64,
        epochs: &[Epoch],
    ) -> Result<HeapLayout> {
        if epochs.is_empty() {
            return Err(PoseidonError::BadGeometry("layout epoch chain is empty"));
        }
        let layout = HeapLayout::bare(meta_size, user_size, c0);
        for epoch in epochs {
            layout.push_epoch(*epoch)?;
        }
        Ok(layout)
    }

    /// Appends a committed epoch to the in-memory chain. Publication
    /// order (slot, then count, then cached totals) guarantees any reader
    /// that observes the new totals can resolve every sub-heap they imply.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] if the chain is full, non-contiguous,
    /// or would exceed the sub-heap directory.
    pub(crate) fn push_epoch(&self, epoch: Epoch) -> Result<()> {
        let count = self.epoch_count.load(Ordering::Acquire) as usize;
        if count >= MAX_EPOCHS {
            return Err(PoseidonError::BadGeometry("layout epoch chain is full"));
        }
        let expected_base = if count == 0 { 0 } else { self.capacity() };
        let expected_first = self.cached_subheaps.load(Ordering::Acquire);
        if epoch.base != expected_base
            || epoch.first_subheap != expected_first
            || epoch.capacity <= epoch.base
        {
            return Err(PoseidonError::BadGeometry("layout epoch chain is not contiguous"));
        }
        if epoch.first_subheap as u64 + epoch.num_subheaps as u64 > MAX_SUBHEAPS as u64 {
            return Err(PoseidonError::BadGeometry("epoch exceeds the sub-heap directory"));
        }
        self.epochs[count].set(epoch).expect("slots at or past epoch_count are unset");
        self.epoch_count.store(count as u32 + 1, Ordering::Release);
        self.cached_capacity.store(epoch.capacity, Ordering::Release);
        self.cached_subheaps.store(epoch.first_subheap + epoch.num_subheaps, Ordering::Release);
        self.cached_huge.fetch_add(epoch.huge_size, Ordering::AcqRel);
        Ok(())
    }

    /// Plans the epoch a [`grow`](crate::PoseidonHeap::grow) to
    /// `new_capacity` would append: as many whole sub-heaps as fit in the
    /// added range after reserving the huge band's share (skipped entirely
    /// when the heap was created without a huge region), with the
    /// remainder joining the band.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] if the chain or directory is full,
    /// the capacity does not increase, is not page-aligned, or the added
    /// space fits neither a sub-heap nor a band page.
    pub(crate) fn plan_growth(&self, new_capacity: u64) -> Result<Epoch> {
        if self.epoch_count() >= MAX_EPOCHS {
            return Err(PoseidonError::BadGeometry("layout epoch chain is full"));
        }
        let base = self.capacity();
        if new_capacity <= base {
            return Err(PoseidonError::BadGeometry("growth must increase capacity"));
        }
        if !new_capacity.is_multiple_of(PAGE_SIZE) || !base.is_multiple_of(PAGE_SIZE) {
            return Err(PoseidonError::BadGeometry("growth boundaries must be page-aligned"));
        }
        let added = new_capacity - base;
        let per_sub = self.meta_size + self.user_size;
        let has_huge = self.epoch(0).huge_size > 0;
        let band_reserve = if has_huge { added / HUGE_REGION_DIVISOR / PAGE_SIZE * PAGE_SIZE } else { 0 };
        let first = self.num_subheaps() as u64;
        let room = MAX_SUBHEAPS as u64 - first;
        let num_new = ((added - band_reserve) / per_sub).min(room);
        // Whatever the whole sub-heaps leave behind joins the huge band
        // (page-truncated); without a huge region it is simply unused.
        let huge_size = if has_huge { (added - num_new * per_sub) / PAGE_SIZE * PAGE_SIZE } else { 0 };
        if num_new == 0 && huge_size == 0 {
            return Err(PoseidonError::BadGeometry(
                "added capacity too small for a sub-heap or huge-band page",
            ));
        }
        Ok(Epoch {
            base,
            capacity: new_capacity,
            first_subheap: first as u32,
            num_subheaps: num_new as u32,
            huge_base: base + num_new * per_sub,
            huge_size,
        })
    }

    /// Number of committed layout epochs.
    #[inline]
    pub fn epoch_count(&self) -> usize {
        self.epoch_count.load(Ordering::Acquire) as usize
    }

    /// The `index`-th committed epoch.
    ///
    /// # Panics
    ///
    /// If `index >= epoch_count()`.
    #[inline]
    pub fn epoch(&self, index: usize) -> &Epoch {
        self.epochs[index].get().expect("index below epoch_count is set")
    }

    /// Iterates the committed epochs, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &Epoch> + '_ {
        (0..self.epoch_count()).map(|i| self.epoch(i))
    }

    /// Current total device capacity (the last epoch's end).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.cached_capacity.load(Ordering::Acquire)
    }

    /// Current total number of sub-heaps across all epochs.
    #[inline]
    pub fn num_subheaps(&self) -> u16 {
        self.cached_subheaps.load(Ordering::Acquire) as u16
    }

    /// Total bytes of huge-object data across all epoch bands (the size of
    /// the logical huge space); 0 when the heap has no huge region.
    #[inline]
    pub fn huge_data_size(&self) -> u64 {
        self.cached_huge.load(Ordering::Acquire)
    }

    /// The epoch hosting sub-heap `sub`.
    ///
    /// # Panics
    ///
    /// If `sub` is beyond every committed epoch.
    #[inline]
    pub fn epoch_of_sub(&self, sub: u16) -> &Epoch {
        let s = sub as u32;
        self.epochs()
            .find(|e| s >= e.first_subheap && s < e.first_subheap + e.num_subheaps)
            .expect("sub-heap index beyond the epoch chain")
    }

    /// Device offset of sub-heap `sub`'s metadata region.
    #[inline]
    pub fn meta_base(&self, sub: u16) -> u64 {
        let epoch = self.epoch_of_sub(sub);
        epoch.metas_base() + (sub as u64 - epoch.first_subheap as u64) * self.meta_size
    }

    /// Bytes of huge-region metadata (0 when no huge region is carved).
    #[inline]
    pub fn huge_meta_size(&self) -> u64 {
        if self.epoch(0).huge_size == 0 {
            0
        } else {
            HUGE_META_SIZE
        }
    }

    /// Device offset of the huge-region metadata (header, undo log, extent
    /// table), which lives in epoch 0 and serves every band. Meaningless
    /// when [`Self::huge_data_size`] is 0.
    #[inline]
    pub fn huge_meta_base(&self) -> u64 {
        SB_REGION_SIZE + self.epoch(0).num_subheaps as u64 * self.meta_size
    }

    /// End of epoch 0's metadata prefix. Growth epochs carry further
    /// metadata ranges; [`Self::meta_ranges`] enumerates them all.
    #[inline]
    pub fn meta_end(&self) -> u64 {
        self.huge_meta_base() + self.huge_meta_size()
    }

    /// Every MPK-protected metadata range as `(base, len)`: epoch 0's
    /// prefix `[0, meta_end)`, then each growth epoch's sub-heap metadata
    /// block.
    pub fn meta_ranges(&self) -> Vec<(u64, u64)> {
        let mut ranges = vec![(0, self.meta_end())];
        for epoch in self.epochs().skip(1) {
            if epoch.num_subheaps > 0 {
                ranges.push((epoch.base, epoch.num_subheaps as u64 * self.meta_size));
            }
        }
        ranges
    }

    /// Device offset of sub-heap `sub`'s user region.
    #[inline]
    pub fn user_base(&self, sub: u16) -> u64 {
        let epoch = self.epoch_of_sub(sub);
        let users_base = if epoch.base == 0 { self.meta_end() } else { epoch.metas_end(self.meta_size) };
        users_base + (sub as u64 - epoch.first_subheap as u64) * self.user_size
    }

    /// The huge-data bands in logical order (empty when the heap has no
    /// huge region).
    pub fn huge_bands(&self) -> Vec<HugeBand> {
        let mut bands = Vec::new();
        let mut logical = 0;
        for epoch in self.epochs() {
            if epoch.huge_size > 0 {
                bands.push(HugeBand { logical, phys: epoch.huge_base, len: epoch.huge_size });
                logical += epoch.huge_size;
            }
        }
        bands
    }

    /// Maps the logical huge range `[logical, logical + len)` to its
    /// device offset. Returns `None` when the range is out of bounds or
    /// straddles a band boundary (extents never do; a straddle means the
    /// extent table is corrupt).
    pub fn huge_phys_of(&self, logical: u64, len: u64) -> Option<u64> {
        let end = logical.checked_add(len)?;
        self.huge_bands()
            .into_iter()
            .find(|b| logical >= b.logical && end <= b.logical + b.len)
            .map(|b| b.phys + (logical - b.logical))
    }

    /// Bounds `(start, end)` of the logical band containing `logical`, the
    /// hard walls that huge-extent coalescing must not cross.
    pub fn huge_band_bounds(&self, logical: u64) -> Option<(u64, u64)> {
        self.huge_bands()
            .into_iter()
            .find(|b| logical >= b.logical && logical < b.logical + b.len)
            .map(|b| (b.logical, b.logical + b.len))
    }

    /// Classifies a device offset by the region it falls in.
    pub fn locate(&self, offset: u64) -> Region {
        if offset < SB_REGION_SIZE {
            return Region::Superblock;
        }
        let mut logical_huge = 0;
        for epoch in self.epochs() {
            let metas_base = epoch.metas_base();
            let metas_end = epoch.metas_end(self.meta_size);
            if offset >= metas_base && offset < metas_end {
                let sub = epoch.first_subheap as u64 + (offset - metas_base) / self.meta_size;
                return Region::SubMeta(sub as u16);
            }
            let users_base = if epoch.base == 0 {
                if offset >= metas_end && offset < metas_end + self.huge_meta_size() {
                    return Region::HugeMeta;
                }
                self.meta_end()
            } else {
                metas_end
            };
            let users_end = users_base + epoch.num_subheaps as u64 * self.user_size;
            if offset >= users_base && offset < users_end {
                let sub = epoch.first_subheap as u64 + (offset - users_base) / self.user_size;
                return Region::SubUser(sub as u16);
            }
            if epoch.huge_size > 0 && offset >= epoch.huge_base && offset < epoch.huge_base + epoch.huge_size
            {
                return Region::HugeData { logical: logical_huge + (offset - epoch.huge_base) };
            }
            logical_huge += epoch.huge_size;
        }
        Region::Unused
    }

    /// Number of entries in hash-table level `level`.
    #[inline]
    pub fn level_capacity(&self, level: usize) -> u64 {
        debug_assert!(level < MAX_LEVELS);
        self.c0 << level
    }

    /// Device offset of hash-table level `level` of sub-heap `sub`.
    #[inline]
    pub fn level_base(&self, sub: u16, level: usize) -> u64 {
        debug_assert!(level < MAX_LEVELS);
        // Levels 0..level hold c0 * (2^level - 1) entries in total.
        self.meta_base(sub) + SH_TABLE_OFF + self.c0 * ((1 << level) - 1) * ENTRY_SIZE
    }

    /// The sub-heap serving a logical CPU (§4.1: one sub-heap per CPU; CPU
    /// ids beyond the sub-heap count wrap). After growth the modulus
    /// covers the enlarged set, spreading CPUs across old and new
    /// sub-heaps alike.
    #[inline]
    pub fn subheap_for_cpu(&self, cpu: usize) -> u16 {
        (cpu % self.num_subheaps() as usize) as u16
    }

    /// Largest single allocation a sub-heap can ever serve: the biggest
    /// power of two that fits in the user region. Requests above this are
    /// routed to the huge-object region (when one exists).
    #[inline]
    pub fn max_alloc(&self) -> u64 {
        if self.user_size == 0 {
            0
        } else {
            let max_pow = 63 - self.user_size.leading_zeros();
            1u64 << max_pow
        }
    }
}

/// Rounds `size` up to its buddy class; returns `(class, class_size)`.
///
/// # Errors
///
/// [`PoseidonError::ZeroSize`] for `size == 0`.
pub fn class_for_size(size: u64) -> Result<(usize, u64)> {
    if size == 0 {
        return Err(PoseidonError::ZeroSize);
    }
    let rounded = size.max(MIN_BLOCK).next_power_of_two();
    let class = (rounded.trailing_zeros() - MIN_BLOCK_SHIFT) as usize;
    debug_assert!(class < NUM_CLASSES);
    Ok((class, rounded))
}

/// The size of blocks in buddy class `class`.
#[inline]
pub fn class_size(class: usize) -> u64 {
    MIN_BLOCK << class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_page_aligned_and_in_bounds() {
        let layout = HeapLayout::compute(256 << 20, 8).unwrap();
        assert_eq!(layout.meta_size % PAGE_SIZE, 0);
        assert_eq!(layout.user_size % PAGE_SIZE, 0);
        for sub in 0..8u16 {
            assert_eq!(layout.meta_base(sub), SB_REGION_SIZE + sub as u64 * layout.meta_size);
            assert!(layout.meta_base(sub) + layout.meta_size <= layout.meta_end());
            assert!(layout.user_base(sub) >= layout.meta_end());
            assert!(layout.user_base(sub) + layout.user_size <= layout.capacity());
        }
        // User regions do not overlap.
        assert_eq!(layout.user_base(1) - layout.user_base(0), layout.user_size);
    }

    #[test]
    fn table_levels_double_and_fit_in_meta() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        for level in 0..MAX_LEVELS {
            assert_eq!(layout.level_capacity(level), layout.c0 << level);
        }
        let last = MAX_LEVELS - 1;
        let table_end =
            layout.level_base(0, last) + layout.level_capacity(last) * ENTRY_SIZE - layout.meta_base(0);
        assert!(table_end <= layout.meta_size);
    }

    #[test]
    fn table_holds_an_entry_per_256_bytes_of_user_region() {
        let layout = HeapLayout::compute(1 << 30, 4).unwrap();
        let total_entries: u64 = (0..MAX_LEVELS).map(|l| layout.level_capacity(l)).sum();
        assert!(total_entries >= layout.user_size / 256);
    }

    #[test]
    fn too_small_devices_are_rejected() {
        assert!(matches!(HeapLayout::compute(SB_REGION_SIZE, 1), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(HeapLayout::compute(1 << 20, 64), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(HeapLayout::compute(1 << 30, 0), Err(PoseidonError::BadGeometry(_))));
    }

    #[test]
    fn cpu_mapping_wraps() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert_eq!(layout.subheap_for_cpu(0), 0);
        assert_eq!(layout.subheap_for_cpu(5), 1);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_for_size(1).unwrap(), (0, 32));
        assert_eq!(class_for_size(32).unwrap(), (0, 32));
        assert_eq!(class_for_size(33).unwrap(), (1, 64));
        assert_eq!(class_for_size(4096).unwrap(), (7, 4096));
        assert!(matches!(class_for_size(0), Err(PoseidonError::ZeroSize)));
        assert_eq!(class_size(7), 4096);
    }

    #[test]
    fn huge_region_is_carved_page_aligned_and_disjoint() {
        assert_eq!(HUGE_META_SIZE % PAGE_SIZE, 0);
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert!(layout.huge_data_size() > 0);
        assert_eq!(layout.huge_data_size() % PAGE_SIZE, 0);
        assert_eq!(layout.huge_meta_size(), HUGE_META_SIZE);
        // Huge meta sits right after the last sub-heap meta, inside the
        // protected prefix; huge data is the tail of the device.
        assert_eq!(layout.huge_meta_base(), layout.meta_base(3) + layout.meta_size);
        assert_eq!(layout.meta_end(), layout.huge_meta_base() + HUGE_META_SIZE);
        let band = layout.huge_bands()[0];
        assert_eq!(band.phys, layout.user_base(3) + layout.user_size);
        assert!(band.phys + band.len <= layout.capacity());
        // The extent table fits inside the huge metadata region.
        assert!(HUGE_TABLE_OFF + HUGE_EXTENT_SLOTS as u64 * EXTENT_RECORD_SIZE <= HUGE_META_SIZE);
        // A huge allocation can exceed what any sub-heap serves.
        assert!(layout.huge_data_size() > layout.max_alloc());
    }

    #[test]
    fn small_devices_omit_the_huge_region() {
        let layout = HeapLayout::compute(8 << 20, 1).unwrap();
        assert_eq!(layout.huge_data_size(), 0);
        assert_eq!(layout.huge_meta_size(), 0);
        assert_eq!(layout.meta_end(), layout.huge_meta_base());
        assert!(layout.huge_bands().is_empty());
    }

    #[test]
    fn max_alloc_is_a_power_of_two_within_user_region() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let max = layout.max_alloc();
        assert!(max.is_power_of_two());
        assert!(max <= layout.user_size);
        assert!(max * 2 > layout.user_size);
    }

    #[test]
    fn growth_epoch_keeps_subheap_shape_and_extends_totals() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let old_capacity = layout.capacity();
        let epoch = layout.plan_growth(512 << 20).unwrap();
        assert_eq!(epoch.base, old_capacity);
        assert_eq!(epoch.capacity, 512 << 20);
        assert_eq!(epoch.first_subheap, 4);
        assert!(epoch.num_subheaps > 0);
        assert!(epoch.huge_size > 0);
        let before_subs = layout.num_subheaps();
        let before_huge = layout.huge_data_size();
        layout.push_epoch(epoch).unwrap();
        assert_eq!(layout.capacity(), 512 << 20);
        assert_eq!(layout.num_subheaps(), before_subs + epoch.num_subheaps as u16);
        assert_eq!(layout.huge_data_size(), before_huge + epoch.huge_size);
        // New sub-heaps live inside the new epoch, with the same shape.
        let sub = epoch.first_subheap as u16;
        assert_eq!(layout.meta_base(sub), epoch.base);
        assert_eq!(layout.user_base(sub), epoch.base + epoch.num_subheaps as u64 * layout.meta_size);
        assert!(layout.user_base(sub) + layout.user_size <= epoch.huge_base);
        assert_eq!(layout.epoch_of_sub(sub).base, epoch.base);
        assert_eq!(layout.epoch_of_sub(0).base, 0);
        // The band tiles the tail of the epoch.
        assert!(epoch.huge_base + epoch.huge_size <= epoch.capacity);
        // Old sub-heaps did not move.
        assert_eq!(layout.meta_base(0), SB_REGION_SIZE);
    }

    #[test]
    fn growth_without_huge_region_is_subheaps_only() {
        let layout = HeapLayout::compute(8 << 20, 1).unwrap();
        let epoch = layout.plan_growth(16 << 20).unwrap();
        assert_eq!(epoch.huge_size, 0);
        assert!(epoch.num_subheaps > 0);
        // Too-small growth is rejected rather than committing a dead epoch.
        assert!(matches!(layout.plan_growth((8 << 20) + PAGE_SIZE), Err(PoseidonError::BadGeometry(_))));
    }

    #[test]
    fn growth_is_validated() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert!(matches!(layout.plan_growth(256 << 20), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(layout.plan_growth(128 << 20), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(layout.plan_growth((512 << 20) + 7), Err(PoseidonError::BadGeometry(_))));
        // Non-contiguous epochs are rejected by push_epoch.
        let mut epoch = layout.plan_growth(512 << 20).unwrap();
        epoch.base += PAGE_SIZE;
        assert!(layout.push_epoch(epoch).is_err());
    }

    #[test]
    fn huge_bands_map_logical_to_phys_with_walls() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let band0 = layout.huge_data_size();
        layout.push_epoch(layout.plan_growth(512 << 20).unwrap()).unwrap();
        let bands = layout.huge_bands();
        assert_eq!(bands.len(), 2);
        assert_eq!(bands[0].logical, 0);
        assert_eq!(bands[1].logical, band0);
        // In-band mapping is offset arithmetic.
        assert_eq!(layout.huge_phys_of(0, 64), Some(bands[0].phys));
        assert_eq!(layout.huge_phys_of(band0, 64), Some(bands[1].phys));
        // A range straddling the wall does not map.
        assert_eq!(layout.huge_phys_of(band0 - 32, 64), None);
        assert_eq!(layout.huge_phys_of(layout.huge_data_size(), 1), None);
        assert_eq!(layout.huge_band_bounds(band0 - 1), Some((0, band0)));
        assert_eq!(layout.huge_band_bounds(band0), Some((band0, layout.huge_data_size())));
    }

    #[test]
    fn locate_classifies_every_region() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        layout.push_epoch(layout.plan_growth(512 << 20).unwrap()).unwrap();
        assert_eq!(layout.locate(0), Region::Superblock);
        assert_eq!(layout.locate(layout.meta_base(1) + 8), Region::SubMeta(1));
        assert_eq!(layout.locate(layout.huge_meta_base()), Region::HugeMeta);
        assert_eq!(layout.locate(layout.user_base(2) + 64), Region::SubUser(2));
        let grown_sub = layout.epoch(1).first_subheap as u16;
        assert_eq!(layout.locate(layout.meta_base(grown_sub)), Region::SubMeta(grown_sub));
        assert_eq!(layout.locate(layout.user_base(grown_sub)), Region::SubUser(grown_sub));
        let band = layout.huge_bands()[1];
        assert_eq!(layout.locate(band.phys + 100), Region::HugeData { logical: band.logical + 100 });
        // Epoch 0's per-sub rounding remainder belongs to no region.
        assert_eq!(layout.locate(layout.epoch(0).capacity - 1), Region::Unused);
    }

    #[test]
    fn clone_and_eq_cover_the_epoch_chain() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let snapshot = layout.clone();
        assert_eq!(layout, snapshot);
        layout.push_epoch(layout.plan_growth(512 << 20).unwrap()).unwrap();
        assert_ne!(layout, snapshot);
        assert_eq!(layout, layout.clone());
    }
}
