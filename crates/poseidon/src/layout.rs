//! Heap geometry: where everything lives on the device.
//!
//! A Poseidon heap is laid out as a superblock followed by `N` contiguous
//! per-CPU sub-heap **metadata** regions, the **huge-region metadata**
//! (extent table + undo log), `N` **user-data** regions, and finally the
//! **huge-object data** region (§4.2 — fully segregated metadata):
//!
//! ```text
//! ┌────────────┬────────┬───┬───────────┬────────┬───┬───────────┐
//! │ superblock │ meta 0 │ … │ huge meta │ user 0 │ … │ huge data │
//! └────────────┴────────┴───┴───────────┴────────┴───┴───────────┘
//! └─────────── MPK-protected ──────────┘ └───── unprotected ─────┘
//! ```
//!
//! The whole metadata prefix `[0, meta_end)` is tagged with one MPK key at
//! load time; user regions are never tagged. Every boundary is page-aligned
//! so protection has exactly the granularity the paper requires.
//!
//! Allocations larger than [`HeapLayout::max_alloc`] bypass the per-CPU
//! sub-heaps entirely and are served from the huge-object region by an
//! extent allocator (first-fit over sorted free extents; see
//! `hugeregion`). On devices too small for the carve-out to be useful the
//! huge region is omitted and over-sized allocations keep failing with
//! `TooLarge`.
//!
//! Each sub-heap's metadata region contains, at fixed offsets: a small
//! header, the buddy-list head/tail arrays, per-level entry counts, the
//! undo-log area, the micro-log area, and finally the multi-level hash
//! table, whose levels double in capacity and are materialised lazily
//! (unused levels cost nothing thanks to the device's sparse store, and
//! emptied levels are hole-punched back, §5.6).

use pmem::PAGE_SIZE;

use crate::error::{PoseidonError, Result};

/// Bytes reserved for the superblock region (header + sub-heap directory +
/// superblock undo log).
pub const SB_REGION_SIZE: u64 = 64 * 1024;
/// Offset of the sub-heap directory (one u64 entry per sub-heap).
pub const SB_DIR_OFF: u64 = PAGE_SIZE;
/// Offset of the superblock undo-log area.
pub const SB_UNDO_OFF: u64 = 2 * PAGE_SIZE;
/// Size of the superblock undo-log area.
pub const SB_UNDO_SIZE: u64 = 4 * PAGE_SIZE;

/// log2 of the smallest block size (32 B).
pub const MIN_BLOCK_SHIFT: u32 = 5;
/// Smallest allocatable block size.
pub const MIN_BLOCK: u64 = 1 << MIN_BLOCK_SHIFT;
/// Number of buddy size classes (class `k` holds blocks of `32 << k`
/// bytes); 48 classes cover every representable block.
pub const NUM_CLASSES: usize = 48;
/// Number of hash-table levels (level `l` holds `c0 << l` entries).
pub const MAX_LEVELS: usize = 10;
/// Linear-probing window per level, in slots.
pub const PROBE_WINDOW: u64 = 32;
/// Size of one hash-table entry (one cache line).
pub const ENTRY_SIZE: u64 = 64;

/// Offset of the buddy-list head array (`[u64; NUM_CLASSES]`).
pub const SH_BUDDY_HEADS_OFF: u64 = 0x100;
/// Offset of the buddy-list tail array (`[u64; NUM_CLASSES]`).
pub const SH_BUDDY_TAILS_OFF: u64 = SH_BUDDY_HEADS_OFF + (NUM_CLASSES as u64) * 8;
/// Offset of the per-level live-entry count array (`[u64; MAX_LEVELS]`).
pub const SH_LEVEL_COUNTS_OFF: u64 = 0x400;
/// Offset of the sub-heap undo-log area.
pub const SH_UNDO_OFF: u64 = 0x1000;
/// Size of the sub-heap undo-log area.
pub const SH_UNDO_SIZE: u64 = 0x10000;
/// Offset of the sub-heap micro-log area.
pub const SH_MICRO_OFF: u64 = SH_UNDO_OFF + SH_UNDO_SIZE;
/// The micro log is *per-transaction* (the paper's "per-thread micro
/// log"): the area is divided into slots, one claimed per open
/// transaction, so concurrent transactions sharing a sub-heap commit and
/// abort independently.
pub const MICRO_SLOTS: usize = 32;
/// Bytes per micro-log slot (a count word + padding + the pointers).
pub const MICRO_SLOT_BYTES: u64 = 512;
/// Maximum number of allocations a single transaction can micro-log.
pub const MICRO_LOG_CAPACITY: usize = ((MICRO_SLOT_BYTES - 16) / 16) as usize;
/// Size of the sub-heap micro-log area.
pub const SH_MICRO_SIZE: u64 = MICRO_SLOTS as u64 * MICRO_SLOT_BYTES;
/// Offset of the multi-level hash table.
pub const SH_TABLE_OFF: u64 = SH_MICRO_OFF + SH_MICRO_SIZE;
/// Offset of the per-level entry checksum array (`[u64; MAX_LEVELS]`),
/// maintained alongside the live-entry counts so repair can distinguish a
/// genuinely empty level from one whose records were lost to poison.
pub const SH_LEVEL_SUMS_OFF: u64 = 0x500;

/// Offset of the huge-region undo-log area within the huge metadata region
/// (the first page holds the huge-region header).
pub const HUGE_UNDO_OFF: u64 = PAGE_SIZE;
/// Size of the huge-region undo-log area.
pub const HUGE_UNDO_SIZE: u64 = 0x10000;
/// Offset of the extent table within the huge metadata region.
pub const HUGE_TABLE_OFF: u64 = HUGE_UNDO_OFF + HUGE_UNDO_SIZE;
/// Number of slots in the huge-region extent table.
pub const HUGE_EXTENT_SLOTS: usize = 1024;
/// Bytes per extent record.
pub const EXTENT_RECORD_SIZE: u64 = 32;
/// Bytes of huge-region metadata (header page + undo log + extent table);
/// a multiple of the page size (asserted in tests).
pub const HUGE_META_SIZE: u64 = HUGE_TABLE_OFF + HUGE_EXTENT_SLOTS as u64 * EXTENT_RECORD_SIZE;
/// Fraction of the usable device given to the huge-object data region
/// (one part in `HUGE_REGION_DIVISOR`).
pub const HUGE_REGION_DIVISOR: u64 = 4;
/// Smallest usable capacity (device minus superblock) for which the huge
/// region is carved out at all; below this, every byte goes to sub-heaps.
pub const HUGE_MIN_USABLE: u64 = 16 << 20;

/// Computed geometry of a heap on a particular device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapLayout {
    /// Device capacity the layout was computed for.
    pub capacity: u64,
    /// Number of per-CPU sub-heaps.
    pub num_subheaps: u16,
    /// Bytes of metadata region per sub-heap (page-aligned).
    pub meta_size: u64,
    /// Bytes of user region per sub-heap (page-aligned).
    pub user_size: u64,
    /// Entries in hash-table level 0 (power of two).
    pub c0: u64,
    /// Bytes of huge-object data region (page-aligned; 0 when the device is
    /// too small for the carve-out).
    pub huge_data_size: u64,
}

impl HeapLayout {
    /// Computes the layout for a device of `capacity` bytes hosting
    /// `num_subheaps` sub-heaps.
    ///
    /// The hash table is sized so that the sum of all levels holds one
    /// entry per 256 B of user region (tombstone reuse and defragmentation
    /// cover denser small-block populations).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] if the device is too small.
    pub fn compute(capacity: u64, num_subheaps: u16) -> Result<HeapLayout> {
        if num_subheaps == 0 {
            return Err(PoseidonError::BadGeometry("need at least one sub-heap"));
        }
        let n = num_subheaps as u64;
        if capacity <= SB_REGION_SIZE {
            return Err(PoseidonError::BadGeometry("device smaller than the superblock region"));
        }
        let usable = capacity - SB_REGION_SIZE;
        // Huge-object carve-out: one part in HUGE_REGION_DIVISOR of the
        // usable space, page-aligned, plus a fixed metadata region — but
        // only when the device is large enough for the region to serve
        // anything a sub-heap cannot.
        let (huge_meta, huge_data_size) = if usable >= HUGE_MIN_USABLE {
            (HUGE_META_SIZE, usable / HUGE_REGION_DIVISOR / PAGE_SIZE * PAGE_SIZE)
        } else {
            (0, 0)
        };
        let per_sub = (usable - huge_meta - huge_data_size) / n;
        let levels_factor = (1u64 << MAX_LEVELS) - 1;
        let total_entries = (per_sub / 256).max(4096);
        let c0 = total_entries.div_ceil(levels_factor).next_power_of_two().max(64);
        let table_bytes = c0 * ENTRY_SIZE * levels_factor;
        let meta_size = (SH_TABLE_OFF + table_bytes).next_multiple_of(PAGE_SIZE);
        if per_sub < meta_size + PAGE_SIZE {
            return Err(PoseidonError::BadGeometry(
                "device too small for the requested sub-heap count (no room for user regions)",
            ));
        }
        let user_size = (per_sub - meta_size) / PAGE_SIZE * PAGE_SIZE;
        Ok(HeapLayout { capacity, num_subheaps, meta_size, user_size, c0, huge_data_size })
    }

    /// Device offset of sub-heap `sub`'s metadata region.
    #[inline]
    pub fn meta_base(&self, sub: u16) -> u64 {
        debug_assert!(sub < self.num_subheaps);
        SB_REGION_SIZE + sub as u64 * self.meta_size
    }

    /// Bytes of huge-region metadata (0 when no huge region is carved).
    #[inline]
    pub fn huge_meta_size(&self) -> u64 {
        if self.huge_data_size == 0 {
            0
        } else {
            HUGE_META_SIZE
        }
    }

    /// Device offset of the huge-region metadata (header, undo log, extent
    /// table). Meaningless when [`Self::huge_data_size`] is 0.
    #[inline]
    pub fn huge_meta_base(&self) -> u64 {
        SB_REGION_SIZE + self.num_subheaps as u64 * self.meta_size
    }

    /// End of the metadata prefix — everything below this is MPK-protected.
    #[inline]
    pub fn meta_end(&self) -> u64 {
        self.huge_meta_base() + self.huge_meta_size()
    }

    /// Device offset of the huge-object data region (at the tail of the
    /// device, after every user region).
    #[inline]
    pub fn huge_data_base(&self) -> u64 {
        self.meta_end() + self.num_subheaps as u64 * self.user_size
    }

    /// Device offset of sub-heap `sub`'s user region.
    #[inline]
    pub fn user_base(&self, sub: u16) -> u64 {
        debug_assert!(sub < self.num_subheaps);
        self.meta_end() + sub as u64 * self.user_size
    }

    /// Number of entries in hash-table level `level`.
    #[inline]
    pub fn level_capacity(&self, level: usize) -> u64 {
        debug_assert!(level < MAX_LEVELS);
        self.c0 << level
    }

    /// Device offset of hash-table level `level` of sub-heap `sub`.
    #[inline]
    pub fn level_base(&self, sub: u16, level: usize) -> u64 {
        debug_assert!(level < MAX_LEVELS);
        // Levels 0..level hold c0 * (2^level - 1) entries in total.
        self.meta_base(sub) + SH_TABLE_OFF + self.c0 * ((1 << level) - 1) * ENTRY_SIZE
    }

    /// The sub-heap serving a logical CPU (§4.1: one sub-heap per CPU; CPU
    /// ids beyond the sub-heap count wrap).
    #[inline]
    pub fn subheap_for_cpu(&self, cpu: usize) -> u16 {
        (cpu % self.num_subheaps as usize) as u16
    }

    /// Largest single allocation a sub-heap can ever serve: the biggest
    /// power of two that fits in the user region. Requests above this are
    /// routed to the huge-object region (when one exists).
    #[inline]
    pub fn max_alloc(&self) -> u64 {
        if self.user_size == 0 {
            0
        } else {
            let max_pow = 63 - self.user_size.leading_zeros();
            1u64 << max_pow
        }
    }
}

/// Rounds `size` up to its buddy class; returns `(class, class_size)`.
///
/// # Errors
///
/// [`PoseidonError::ZeroSize`] for `size == 0`.
pub fn class_for_size(size: u64) -> Result<(usize, u64)> {
    if size == 0 {
        return Err(PoseidonError::ZeroSize);
    }
    let rounded = size.max(MIN_BLOCK).next_power_of_two();
    let class = (rounded.trailing_zeros() - MIN_BLOCK_SHIFT) as usize;
    debug_assert!(class < NUM_CLASSES);
    Ok((class, rounded))
}

/// The size of blocks in buddy class `class`.
#[inline]
pub fn class_size(class: usize) -> u64 {
    MIN_BLOCK << class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_page_aligned_and_in_bounds() {
        let layout = HeapLayout::compute(256 << 20, 8).unwrap();
        assert_eq!(layout.meta_size % PAGE_SIZE, 0);
        assert_eq!(layout.user_size % PAGE_SIZE, 0);
        for sub in 0..8u16 {
            assert_eq!(layout.meta_base(sub), SB_REGION_SIZE + sub as u64 * layout.meta_size);
            assert!(layout.meta_base(sub) + layout.meta_size <= layout.meta_end());
            assert!(layout.user_base(sub) >= layout.meta_end());
            assert!(layout.user_base(sub) + layout.user_size <= layout.capacity);
        }
        // User regions do not overlap.
        assert_eq!(layout.user_base(1) - layout.user_base(0), layout.user_size);
    }

    #[test]
    fn table_levels_double_and_fit_in_meta() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        for level in 0..MAX_LEVELS {
            assert_eq!(layout.level_capacity(level), layout.c0 << level);
        }
        let last = MAX_LEVELS - 1;
        let table_end =
            layout.level_base(0, last) + layout.level_capacity(last) * ENTRY_SIZE - layout.meta_base(0);
        assert!(table_end <= layout.meta_size);
    }

    #[test]
    fn table_holds_an_entry_per_256_bytes_of_user_region() {
        let layout = HeapLayout::compute(1 << 30, 4).unwrap();
        let total_entries: u64 = (0..MAX_LEVELS).map(|l| layout.level_capacity(l)).sum();
        assert!(total_entries >= layout.user_size / 256);
    }

    #[test]
    fn too_small_devices_are_rejected() {
        assert!(matches!(HeapLayout::compute(SB_REGION_SIZE, 1), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(HeapLayout::compute(1 << 20, 64), Err(PoseidonError::BadGeometry(_))));
        assert!(matches!(HeapLayout::compute(1 << 30, 0), Err(PoseidonError::BadGeometry(_))));
    }

    #[test]
    fn cpu_mapping_wraps() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert_eq!(layout.subheap_for_cpu(0), 0);
        assert_eq!(layout.subheap_for_cpu(5), 1);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_for_size(1).unwrap(), (0, 32));
        assert_eq!(class_for_size(32).unwrap(), (0, 32));
        assert_eq!(class_for_size(33).unwrap(), (1, 64));
        assert_eq!(class_for_size(4096).unwrap(), (7, 4096));
        assert!(matches!(class_for_size(0), Err(PoseidonError::ZeroSize)));
        assert_eq!(class_size(7), 4096);
    }

    #[test]
    fn huge_region_is_carved_page_aligned_and_disjoint() {
        assert_eq!(HUGE_META_SIZE % PAGE_SIZE, 0);
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert!(layout.huge_data_size > 0);
        assert_eq!(layout.huge_data_size % PAGE_SIZE, 0);
        assert_eq!(layout.huge_meta_size(), HUGE_META_SIZE);
        // Huge meta sits right after the last sub-heap meta, inside the
        // protected prefix; huge data is the tail of the device.
        assert_eq!(layout.huge_meta_base(), layout.meta_base(3) + layout.meta_size);
        assert_eq!(layout.meta_end(), layout.huge_meta_base() + HUGE_META_SIZE);
        assert_eq!(layout.huge_data_base(), layout.user_base(3) + layout.user_size);
        assert!(layout.huge_data_base() + layout.huge_data_size <= layout.capacity);
        // The extent table fits inside the huge metadata region.
        assert!(HUGE_TABLE_OFF + HUGE_EXTENT_SLOTS as u64 * EXTENT_RECORD_SIZE <= HUGE_META_SIZE);
        // A huge allocation can exceed what any sub-heap serves.
        assert!(layout.huge_data_size > layout.max_alloc());
    }

    #[test]
    fn small_devices_omit_the_huge_region() {
        let layout = HeapLayout::compute(8 << 20, 1).unwrap();
        assert_eq!(layout.huge_data_size, 0);
        assert_eq!(layout.huge_meta_size(), 0);
        assert_eq!(layout.meta_end(), layout.huge_meta_base());
    }

    #[test]
    fn max_alloc_is_a_power_of_two_within_user_region() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let max = layout.max_alloc();
        assert!(max.is_power_of_two());
        assert!(max <= layout.user_size);
        assert!(max * 2 > layout.user_size);
    }
}
