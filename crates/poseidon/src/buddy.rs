//! Buddy free lists (§5.2, §5.5).
//!
//! Each sub-heap keeps one doubly-linked list of free blocks per
//! power-of-two size class, threaded through the `next_free`/`prev_free`
//! fields of the blocks' hash-table records (so the lists are persistent
//! and recoverable, with no volatile mirror to rebuild — unlike PMDK's
//! DRAM free-list, whose re-scan the paper identifies as a scalability
//! bottleneck, §3.3). Freed blocks are appended at the *tail* to delay
//! reuse of just-freed memory (§5.5).

use crate::error::{PoseidonError, Result};
use crate::hashtable;
use crate::layout::{class_for_size, NUM_CLASSES};
use crate::persist::{state, HashEntry};
use crate::session::{OpSession, UndoScope};

/// Appends the FREE record at `rec_off` to the tail of its size class's
/// list, writing the record (with fresh links) and the list pointers
/// through the scope.
pub(crate) fn push_tail(
    op: &OpSession<'_>,
    scope: &mut UndoScope<'_, '_>,
    rec_off: u64,
    rec: &mut HashEntry,
) -> Result<()> {
    debug_assert_eq!(rec.state, state::FREE);
    let (class, _) = class_for_size(rec.size)?;
    let tail_field = op.ctx.buddy_tail_off(class);
    let head_field = op.ctx.buddy_head_off(class);
    let tail: u64 = op.read_pod(tail_field)?;
    rec.next_free = 0;
    rec.prev_free = tail;
    hashtable::write_entry(scope, rec_off, rec)?;
    if tail == 0 {
        scope.log_and_write_pod(head_field, &rec_off)?;
    } else {
        let mut prev = op.entry(tail)?;
        prev.next_free = rec_off;
        hashtable::write_entry(scope, tail, &prev)?;
    }
    scope.log_and_write_pod(tail_field, &rec_off)
}

/// Unlinks the record at `rec_off` from its size class's list. The
/// record itself is *not* rewritten (callers always rewrite it right
/// after, as allocated, merged, or re-linked).
pub(crate) fn unlink(
    op: &OpSession<'_>,
    scope: &mut UndoScope<'_, '_>,
    rec_off: u64,
    rec: &HashEntry,
) -> Result<()> {
    let (class, _) = class_for_size(rec.size)?;
    if rec.prev_free != 0 {
        let mut prev = op.entry(rec.prev_free)?;
        if prev.next_free != rec_off {
            return Err(PoseidonError::Corrupted("buddy list backlink mismatch"));
        }
        prev.next_free = rec.next_free;
        hashtable::write_entry(scope, rec.prev_free, &prev)?;
    } else {
        scope.log_and_write_pod(op.ctx.buddy_head_off(class), &rec.next_free)?;
    }
    if rec.next_free != 0 {
        let mut next = op.entry(rec.next_free)?;
        if next.prev_free != rec_off {
            return Err(PoseidonError::Corrupted("buddy list forward-link mismatch"));
        }
        next.prev_free = rec.prev_free;
        hashtable::write_entry(scope, rec.next_free, &next)?;
    } else {
        scope.log_and_write_pod(op.ctx.buddy_tail_off(class), &rec.prev_free)?;
    }
    Ok(())
}

/// Returns the head record offset of class `class` (0 = empty list).
pub(crate) fn head(op: &OpSession<'_>, class: usize) -> Result<u64> {
    op.read_pod(op.ctx.buddy_head_off(class))
}

/// Finds the smallest class `>= class` with a non-empty free list.
pub(crate) fn first_class_at_least(op: &OpSession<'_>, class: usize) -> Result<Option<usize>> {
    for k in class..NUM_CLASSES {
        if head(op, k)? != 0 {
            return Ok(Some(k));
        }
    }
    Ok(None)
}

/// Collects the record offsets currently in class `class`'s list
/// (a snapshot; the list may be mutated afterwards).
pub(crate) fn collect(op: &OpSession<'_>, class: usize) -> Result<Vec<u64>> {
    let mut offs = Vec::new();
    let mut cursor = head(op, class)?;
    while cursor != 0 {
        offs.push(cursor);
        if offs.len() > (1 << 28) {
            return Err(PoseidonError::Corrupted("buddy list cycle"));
        }
        cursor = op.entry(cursor)?.next_free;
    }
    Ok(offs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::persist::SubCtx;
    use pmem::{DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        dev.write_pod(ctx.active_levels_off(), &1u64).unwrap();
        (dev, layout)
    }

    /// Inserts a FREE record of `size` at user offset `off` and links it.
    fn add_free(op: &OpSession<'_>, off: u64, size: u64) -> u64 {
        let mut s = op.undo().unwrap();
        let mut rec = HashEntry { offset: off, size, state: state::FREE, ..Default::default() };
        let rec_off = hashtable::insert(op, &mut s, rec, false).unwrap();
        push_tail(op, &mut s, rec_off, &mut rec).unwrap();
        s.commit().unwrap();
        rec_off
    }

    #[test]
    fn fifo_order_per_class() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add_free(&op, 0, 64);
        let b = add_free(&op, 64, 64);
        let c = add_free(&op, 128, 64);
        let (class, _) = class_for_size(64).unwrap();
        assert_eq!(collect(&op, class).unwrap(), vec![a, b, c]);
        assert_eq!(head(&op, class).unwrap(), a);
    }

    #[test]
    fn different_sizes_land_in_different_classes() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        add_free(&op, 0, 64);
        add_free(&op, 4096, 4096);
        assert_eq!(collect(&op, class_for_size(64).unwrap().0).unwrap().len(), 1);
        assert_eq!(collect(&op, class_for_size(4096).unwrap().0).unwrap().len(), 1);
        assert_eq!(first_class_at_least(&op, 0).unwrap(), Some(1)); // 64 B = class 1
        assert_eq!(first_class_at_least(&op, 2).unwrap(), Some(7)); // 4 KiB = class 7
        assert_eq!(first_class_at_least(&op, 8).unwrap(), None);
    }

    #[test]
    fn unlink_middle_head_and_tail() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add_free(&op, 0, 64);
        let b = add_free(&op, 64, 64);
        let c = add_free(&op, 128, 64);
        let (class, _) = class_for_size(64).unwrap();

        // Middle.
        let mut s = op.undo().unwrap();
        let rec = op.entry(b).unwrap();
        unlink(&op, &mut s, b, &rec).unwrap();
        s.commit().unwrap();
        assert_eq!(collect(&op, class).unwrap(), vec![a, c]);

        // Head.
        let mut s = op.undo().unwrap();
        let rec = op.entry(a).unwrap();
        unlink(&op, &mut s, a, &rec).unwrap();
        s.commit().unwrap();
        assert_eq!(collect(&op, class).unwrap(), vec![c]);

        // Tail == head (last element).
        let mut s = op.undo().unwrap();
        let rec = op.entry(c).unwrap();
        unlink(&op, &mut s, c, &rec).unwrap();
        s.commit().unwrap();
        assert_eq!(collect(&op, class).unwrap(), Vec::<u64>::new());
        assert_eq!(dev.read_pod::<u64>(op.ctx.buddy_tail_off(class)).unwrap(), 0);
        assert_eq!(dev.read_pod::<u64>(op.ctx.buddy_head_off(class)).unwrap(), 0);
    }

    #[test]
    fn corrupt_links_are_detected() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add_free(&op, 0, 64);
        let b = add_free(&op, 64, 64);
        // Claim b's prev is a dangling record that doesn't point back.
        let mut rec = op.entry(b).unwrap();
        rec.prev_free = a;
        dev.write_pod(b, &rec).unwrap();
        let mut a_rec = op.entry(a).unwrap();
        a_rec.next_free = 0;
        dev.write_pod(a, &a_rec).unwrap();
        let mut s = op.undo().unwrap();
        let rec = op.entry(b).unwrap();
        let r = unlink(&op, &mut s, b, &rec);
        assert!(matches!(r, Err(PoseidonError::Corrupted(_))));
        drop(s);
    }
}
