//! Superblock creation, validation, and the root pointer (§2.2, §4.6).

use pmem::{PmemDevice, PAGE_SIZE};

use crate::error::{PoseidonError, Result};
use crate::layout::{
    Epoch, HeapLayout, MAX_EPOCHS, MAX_SUBHEAPS, SB_DIR_OFF, SB_EPOCHS_OFF, SB_UNDO_OFF, SB_UNDO_SIZE,
};
use crate::nvmptr::NvmPtr;
use crate::persist::{
    DirEntry, EpochRecord, SuperblockHeader, EPOCH_COMMITTED, EPOCH_EMPTY, FORMAT_VERSION, FORMAT_VERSION_V1,
    SUPERBLOCK_MAGIC,
};
use crate::undo::{self, UndoArea};

/// Size of one on-device epoch record.
const EPOCH_RECORD_SIZE: u64 = std::mem::size_of::<EpochRecord>() as u64;

/// Device offset of the superblock's `undo_gen` field.
fn undo_gen_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, undo_gen) as u64
}

/// Device offset of the superblock's `root` field.
fn root_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, root) as u64
}

/// Device offset of the superblock's `version` field.
fn version_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, version) as u64
}

/// Device offset of the superblock's `epoch_count` field.
pub(crate) fn epoch_count_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, epoch_count) as u64
}

/// Device offset of layout-epoch record `index`.
pub(crate) fn epoch_record_off(index: usize) -> u64 {
    debug_assert!(index < MAX_EPOCHS);
    SB_EPOCHS_OFF + index as u64 * EPOCH_RECORD_SIZE
}

/// Reads layout-epoch record `index` (any state).
pub(crate) fn epoch_record(dev: &PmemDevice, index: usize) -> Result<EpochRecord> {
    Ok(dev.read_pod(epoch_record_off(index))?)
}

/// Durably commits epoch `index` of the chain: the record and the
/// header's `epoch_count` are logged and written in **one** superblock
/// undo transaction, whose two-fence commit is the single commit point
/// of an online growth — a crash before it reverts both together, a
/// crash after it leaves the epoch fully described. Caller holds the
/// superblock lock and the MPK write guard.
pub(crate) fn commit_epoch(dev: &PmemDevice, index: usize, epoch: &Epoch) -> Result<()> {
    let mut session = undo::UndoSession::begin_recovering(dev, undo_area())?;
    session.log_and_write_pod(epoch_record_off(index), &EpochRecord::from_epoch(epoch))?;
    session.log_and_write_pod(epoch_count_off(), &(index as u32 + 1))?;
    session.commit()
}

/// The superblock's undo-log area.
pub(crate) fn undo_area() -> UndoArea {
    UndoArea { base: SB_UNDO_OFF, size: SB_UNDO_SIZE, gen_field: undo_gen_off() }
}

/// Directory-entry state of a sub-heap condemned online after a live
/// media fault. Recovery honours it without touching the region;
/// `pfsck --repair` rebuilds the metadata and resets the entry to 1.
pub(crate) const DIR_QUARANTINED: u32 = 2;

/// Device offset of sub-heap `sub`'s directory entry.
pub(crate) fn dir_entry_off(sub: u16) -> u64 {
    SB_DIR_OFF + sub as u64 * 8
}

/// Reads sub-heap `sub`'s directory entry.
pub(crate) fn dir_entry(dev: &PmemDevice, sub: u16) -> Result<DirEntry> {
    Ok(dev.read_pod(dir_entry_off(sub))?)
}

/// Publishes sub-heap `sub` as created (8-byte atomic persisted store —
/// the commit point of sub-heap creation).
pub(crate) fn publish_subheap(dev: &PmemDevice, sub: u16, entry: DirEntry) -> Result<()> {
    dev.write_pod(dir_entry_off(sub), &entry)?;
    dev.persist(dir_entry_off(sub), 8)?;
    Ok(())
}

/// Writes a fresh superblock for `layout` with identity `heap_id`.
///
/// The magic is written *last*, after everything else (directory zeroed,
/// header persisted), so a crash mid-creation leaves a device that does
/// not claim to be a Poseidon heap and is simply re-created next time.
pub(crate) fn create(dev: &PmemDevice, layout: &HeapLayout, heap_id: u64) -> Result<()> {
    debug_assert_eq!(layout.epoch_count(), 1, "create formats a single-epoch layout");
    let header = SuperblockHeader {
        magic: 0, // published below
        version: FORMAT_VERSION,
        heap_id,
        capacity: layout.capacity(),
        num_subheaps: layout.num_subheaps() as u32,
        meta_size: layout.meta_size,
        user_size: layout.user_size,
        c0: layout.c0,
        huge_data_size: layout.huge_data_size(),
        undo_gen: 0,
        root: NvmPtr::NULL,
        epoch_count: 1,
        _pad0: 0,
        _pad1: 0,
        _pad2: 0,
    };
    dev.write_pod(0, &header)?;
    // Zero the whole directory page: sub-heaps materialised by a later
    // grow must read state 0 too, not just the epoch-0 ones.
    dev.write(SB_DIR_OFF, &vec![0u8; PAGE_SIZE as usize])?;
    dev.write_pod(epoch_record_off(0), &EpochRecord::from_epoch(layout.epoch(0)))?;
    dev.persist(0, SB_EPOCHS_OFF + EPOCH_RECORD_SIZE)?;
    dev.write_pod(0, &SUPERBLOCK_MAGIC)?;
    dev.persist(0, 8)?;
    Ok(())
}

/// Checks that a header's stored geometry fields match what this build
/// computes for its creation-time capacity and sub-heap count, returning
/// the recomputed single-epoch layout.
fn check_creation_geometry(header: &SuperblockHeader) -> Result<HeapLayout> {
    let recomputed = HeapLayout::compute(header.capacity, header.num_subheaps as u16)?;
    if recomputed.meta_size != header.meta_size
        || recomputed.user_size != header.user_size
        || recomputed.c0 != header.c0
        || recomputed.huge_data_size() != header.huge_data_size
    {
        return Err(PoseidonError::Corrupted("superblock geometry does not match this build"));
    }
    Ok(recomputed)
}

/// Migrates a version-1 image in place: synthesises the epoch-0 record
/// from the creation-time geometry, publishes the count, then bumps the
/// version — in that order, each persisted, so a crash at any point
/// leaves either a still-valid v1 image (re-migrated next open) or a
/// complete v2 image. Idempotent: every attempt writes the same bytes.
fn migrate_v1(dev: &PmemDevice, header: &SuperblockHeader) -> Result<()> {
    let layout = check_creation_geometry(header)?;
    dev.write_pod(epoch_record_off(0), &EpochRecord::from_epoch(layout.epoch(0)))?;
    dev.persist(epoch_record_off(0), EPOCH_RECORD_SIZE)?;
    dev.write_pod(epoch_count_off(), &1u32)?;
    dev.persist(epoch_count_off(), 4)?;
    dev.write_pod(version_off(), &FORMAT_VERSION)?;
    dev.persist(version_off(), 4)?;
    Ok(())
}

/// Loads and validates an existing superblock, reconstructing the heap
/// geometry — the full layout-epoch chain — it carries. Version-1
/// images are migrated to version 2 in place first.
///
/// # Errors
///
/// [`PoseidonError::FormatVersion`] when the stamped version is one this
/// build cannot open; [`PoseidonError::Corrupted`] if the header is
/// missing or inconsistent with the device.
pub(crate) fn load(dev: &PmemDevice) -> Result<(SuperblockHeader, HeapLayout)> {
    let mut header: SuperblockHeader = dev.read_pod(0)?;
    if header.magic != SUPERBLOCK_MAGIC {
        return Err(PoseidonError::Corrupted("no Poseidon superblock on this device"));
    }
    if header.version == FORMAT_VERSION_V1 {
        migrate_v1(dev, &header)?;
        header = dev.read_pod(0)?;
    }
    if header.version != FORMAT_VERSION {
        return Err(PoseidonError::FormatVersion { found: header.version, supported: FORMAT_VERSION });
    }
    if header.heap_id == 0 || header.num_subheaps == 0 || header.num_subheaps > MAX_SUBHEAPS as u32 {
        return Err(PoseidonError::Corrupted("implausible superblock identity"));
    }
    if header.epoch_count == 0 || header.epoch_count as usize > MAX_EPOCHS {
        return Err(PoseidonError::Corrupted("implausible layout-epoch count"));
    }
    // Epoch 0 must reproduce the creation-time geometry this build
    // computes; growth epochs are validated structurally by the chain
    // builder (contiguity, directory bound).
    let recomputed = check_creation_geometry(&header)?;
    let mut epochs = Vec::with_capacity(header.epoch_count as usize);
    for i in 0..header.epoch_count as usize {
        let rec = epoch_record(dev, i)?;
        if rec.state != EPOCH_COMMITTED {
            return Err(PoseidonError::Corrupted(if rec.state == EPOCH_EMPTY {
                "layout-epoch chain shorter than its recorded count"
            } else {
                "uncommitted record inside the layout-epoch chain"
            }));
        }
        epochs.push(rec.to_epoch());
    }
    if epochs[0] != *recomputed.epoch(0) {
        return Err(PoseidonError::Corrupted("epoch-0 record disagrees with the superblock geometry"));
    }
    let layout = HeapLayout::from_epochs(header.meta_size, header.user_size, header.c0, &epochs)?;
    if layout.capacity() > dev.capacity() {
        return Err(PoseidonError::Corrupted("heap larger than the device holding it"));
    }
    Ok((header, layout))
}

/// Size of the on-device epoch-record area.
pub(crate) const EPOCH_AREA_SIZE: u64 = MAX_EPOCHS as u64 * EPOCH_RECORD_SIZE;

/// Conservatively truncates a torn tail of the layout-epoch chain — the
/// `pfsck --repair` pass for images whose superblock undo log was lost
/// to poison mid-grow (an intact log rolls the tear back instead; run
/// the replay first). Keeps the longest structurally valid committed
/// prefix of the recorded chain, rebuilding the epoch-0 record from the
/// creation geometry if even that was zero-filled, and writes the
/// reduced count back. Returns how many trailing epochs were dropped.
pub(crate) fn truncate_torn_epochs(dev: &PmemDevice) -> Result<u32> {
    let header: SuperblockHeader = dev.read_pod(0)?;
    if header.magic != SUPERBLOCK_MAGIC || header.version != FORMAT_VERSION {
        // Nothing to do: v1 images have no chain (load migrates them) and
        // unknown versions fail the load with the typed error.
        return Ok(0);
    }
    let recomputed = check_creation_geometry(&header)?;
    let count = (header.epoch_count as usize).min(MAX_EPOCHS);
    let mut epochs: Vec<Epoch> = Vec::with_capacity(count);
    for i in 0..count {
        let rec = epoch_record(dev, i)?;
        if rec.state != EPOCH_COMMITTED {
            break;
        }
        let epoch = rec.to_epoch();
        if (i == 0 && epoch != *recomputed.epoch(0)) || epoch.capacity > dev.capacity() {
            break;
        }
        let mut candidate = epochs.clone();
        candidate.push(epoch);
        if HeapLayout::from_epochs(header.meta_size, header.user_size, header.c0, &candidate).is_err() {
            break;
        }
        epochs = candidate;
    }
    if epochs.is_empty() {
        dev.write_pod(epoch_record_off(0), &EpochRecord::from_epoch(recomputed.epoch(0)))?;
        dev.persist(epoch_record_off(0), EPOCH_RECORD_SIZE)?;
        epochs.push(*recomputed.epoch(0));
    }
    let target = epochs.len() as u32;
    if header.epoch_count != target {
        dev.write_pod(epoch_count_off(), &target)?;
        dev.persist(epoch_count_off(), 4)?;
    }
    Ok(header.epoch_count.saturating_sub(target))
}

/// Rewrites a closed single-epoch v2 image into the version-1 byte
/// format — no epoch records, no count, version stamp rolled back — so
/// tests can pin the read-old/write-new migration path without shipping
/// a binary fixture. Refuses a grown (multi-epoch) image, which v1
/// cannot express.
pub(crate) fn downgrade_to_v1(dev: &PmemDevice) -> Result<()> {
    let header: SuperblockHeader = dev.read_pod(0)?;
    if header.magic != SUPERBLOCK_MAGIC || header.epoch_count != 1 {
        return Err(PoseidonError::Corrupted("only a single-epoch image downgrades to v1"));
    }
    dev.write(SB_EPOCHS_OFF, &vec![0u8; EPOCH_AREA_SIZE as usize])?;
    dev.persist(SB_EPOCHS_OFF, EPOCH_AREA_SIZE)?;
    dev.write_pod(epoch_count_off(), &0u32)?;
    dev.persist(epoch_count_off(), 4)?;
    dev.write_pod(version_off(), &FORMAT_VERSION_V1)?;
    dev.persist(version_off(), 4)?;
    Ok(())
}

/// Reads the root pointer.
pub(crate) fn root(dev: &PmemDevice) -> Result<NvmPtr> {
    Ok(dev.read_pod(root_off())?)
}

/// Sets the root pointer through the superblock undo log (a 16-byte
/// value cannot be stored atomically, §5.8 machinery covers it).
/// Caller holds the superblock lock and the MPK write guard.
pub(crate) fn set_root(dev: &PmemDevice, ptr: NvmPtr) -> Result<()> {
    let mut session = undo::UndoSession::begin_recovering(dev, undo_area())?;
    session.log_and_write_pod(root_off(), &ptr)?;
    session.commit()
}

/// Persistently condemns sub-heap `sub` after a live media fault: its
/// directory entry flips to [`DIR_QUARANTINED`] under the superblock
/// undo log's two-fence commit, so the verdict is crash-atomic and
/// every future load sees the sub-heap as quarantined. Caller holds the
/// superblock lock and the MPK write guard. Idempotent.
pub(crate) fn quarantine_subheap(dev: &PmemDevice, sub: u16) -> Result<()> {
    let entry = dir_entry(dev, sub)?;
    if entry.state == DIR_QUARANTINED {
        return Ok(());
    }
    let mut session = undo::UndoSession::begin_recovering(dev, undo_area())?;
    session.log_and_write_pod(dir_entry_off(sub), &DirEntry { state: DIR_QUARANTINED, node: entry.node })?;
    session.commit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn setup() -> (PmemDevice, HeapLayout) {
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        (dev, layout)
    }

    #[test]
    fn create_then_load_roundtrips_geometry() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.heap_id, 0xABCD);
        assert_eq!(loaded, layout);
    }

    #[test]
    fn load_rejects_blank_device() {
        let (dev, _) = setup();
        assert!(matches!(load(&dev), Err(PoseidonError::Corrupted(_))));
    }

    #[test]
    fn crash_during_creation_leaves_no_heap() {
        let (dev, layout) = setup();
        // Crash before the magic is persisted.
        dev.arm_crash_after(3);
        let _ = create(&dev, &layout, 0xABCD);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert!(matches!(load(&dev), Err(PoseidonError::Corrupted(_))));
        // Re-creation succeeds.
        create(&dev, &layout, 0xABCD).unwrap();
        load(&dev).unwrap();
    }

    #[test]
    fn root_set_is_crash_atomic() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        set_root(&dev, NvmPtr::new(0xABCD, 1, 64)).unwrap();
        assert_eq!(root(&dev).unwrap().offset(), 64);

        // Interrupt a second update mid-way; replay must restore the old
        // value, never expose a half-written pointer.
        dev.arm_crash_after(4);
        let _ = set_root(&dev, NvmPtr::new(0xABCD, 0, 128));
        dev.simulate_crash(CrashMode::Strict, 0);
        undo::replay(&dev, undo_area()).unwrap();
        let r = root(&dev).unwrap();
        assert!(
            (r.subheap() == 1 && r.offset() == 64) || (r.subheap() == 0 && r.offset() == 128),
            "torn root pointer: {r}"
        );
    }

    #[test]
    fn quarantine_subheap_is_persistent_and_idempotent() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        publish_subheap(&dev, 1, DirEntry { state: 1, node: 7 }).unwrap();
        quarantine_subheap(&dev, 1).unwrap();
        let e = dir_entry(&dev, 1).unwrap();
        assert_eq!(e.state, DIR_QUARANTINED);
        assert_eq!(e.node, 7, "the NUMA node survives condemnation");
        // Idempotent: a second condemnation is a no-op, not an error.
        quarantine_subheap(&dev, 1).unwrap();
        assert_eq!(dir_entry(&dev, 1).unwrap().state, DIR_QUARANTINED);

        // Crash-atomic: interrupt a condemnation of sub-heap 0 mid-way;
        // after replay the entry is either fully old or fully new.
        dev.arm_crash_after(4);
        let _ = quarantine_subheap(&dev, 0);
        dev.simulate_crash(CrashMode::Strict, 0);
        undo::replay(&dev, undo_area()).unwrap();
        let e = dir_entry(&dev, 0).unwrap();
        assert!(e.state == 0 || e.state == DIR_QUARANTINED, "torn directory entry: {}", e.state);
    }

    /// Rewinds a freshly created v2 image to what a v1 build would have
    /// written: version 1, no epoch count, a virgin epoch-record area.
    fn downgrade_to_v1(dev: &PmemDevice) {
        dev.write_pod(version_off(), &FORMAT_VERSION_V1).unwrap();
        dev.write_pod(epoch_count_off(), &0u32).unwrap();
        dev.write(epoch_record_off(0), &[0u8; 64]).unwrap();
        dev.persist(0, SB_EPOCHS_OFF + EPOCH_RECORD_SIZE).unwrap();
    }

    #[test]
    fn load_migrates_v1_images_in_place() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        downgrade_to_v1(&dev);
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(header.epoch_count, 1);
        assert_eq!(loaded, layout);
        // The migration is durable: the on-device bytes are v2 now.
        let reread: SuperblockHeader = dev.read_pod(0).unwrap();
        assert_eq!(reread.version, FORMAT_VERSION);
        assert_eq!(epoch_record(&dev, 0).unwrap().state, EPOCH_COMMITTED);
        // And idempotent under a crash mid-migration: re-running from a
        // half-migrated image converges to the same v2 state.
        downgrade_to_v1(&dev);
        dev.arm_crash_after(2);
        let _ = load(&dev);
        dev.simulate_crash(CrashMode::Strict, 0);
        let (header, reloaded) = load(&dev).unwrap();
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(reloaded, layout);
    }

    #[test]
    fn unknown_version_reports_typed_error() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        dev.write_pod(version_off(), &99u32).unwrap();
        dev.persist(version_off(), 4).unwrap();
        match load(&dev) {
            Err(PoseidonError::FormatVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected FormatVersion, got {other:?}"),
        }
    }

    #[test]
    fn committed_epoch_extends_the_loaded_chain() {
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20).growable_to(256 << 20));
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        create(&dev, &layout, 0xABCD).unwrap();
        // Grow the device and commit a second epoch.
        let epoch = layout.plan_growth(128 << 20).unwrap();
        dev.grow(128 << 20).unwrap();
        commit_epoch(&dev, 1, &epoch).unwrap();
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.epoch_count, 2);
        assert_eq!(loaded.epoch_count(), 2);
        assert_eq!(loaded.capacity(), 128 << 20);
        assert!(loaded.num_subheaps() >= layout.num_subheaps());
    }

    #[test]
    fn torn_trailing_epoch_is_truncated() {
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20).growable_to(256 << 20));
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        create(&dev, &layout, 0xABCD).unwrap();
        let epoch = layout.plan_growth(128 << 20).unwrap();
        dev.grow(128 << 20).unwrap();
        commit_epoch(&dev, 1, &epoch).unwrap();
        layout.push_epoch(epoch).unwrap();

        // Simulate a tear the undo log cannot fix (it was lost to
        // poison): the count claims a third epoch whose record never
        // reached media. The load refuses it; truncation drops it.
        dev.write_pod(epoch_count_off(), &3u32).unwrap();
        dev.persist(epoch_count_off(), 4).unwrap();
        assert!(load(&dev).is_err());
        assert_eq!(truncate_torn_epochs(&dev).unwrap(), 1);
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.epoch_count, 2);
        assert_eq!(loaded.capacity(), 128 << 20);

        // A zero-filled record area (poison scrubbed away) keeps no
        // committed prefix at all: epoch 0 is rebuilt from the creation
        // geometry and the growth epoch is dropped.
        dev.write(SB_EPOCHS_OFF, &vec![0u8; EPOCH_AREA_SIZE as usize]).unwrap();
        dev.persist(SB_EPOCHS_OFF, EPOCH_AREA_SIZE).unwrap();
        assert_eq!(truncate_torn_epochs(&dev).unwrap(), 1);
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.epoch_count, 1);
        assert_eq!(loaded.capacity(), 64 << 20);
        assert_eq!(loaded.num_subheaps(), 2);
    }

    #[test]
    fn publish_subheap_is_visible() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        assert_eq!(dir_entry(&dev, 1).unwrap().state, 0);
        publish_subheap(&dev, 1, DirEntry { state: 1, node: 1 }).unwrap();
        let e = dir_entry(&dev, 1).unwrap();
        assert_eq!(e.state, 1);
        assert_eq!(e.node, 1);
    }
}
