//! Superblock creation, validation, and the root pointer (§2.2, §4.6).

use pmem::PmemDevice;

use crate::error::{PoseidonError, Result};
use crate::layout::{HeapLayout, SB_DIR_OFF, SB_UNDO_OFF, SB_UNDO_SIZE};
use crate::nvmptr::NvmPtr;
use crate::persist::{DirEntry, SuperblockHeader, FORMAT_VERSION, SUPERBLOCK_MAGIC};
use crate::undo::{self, UndoArea};

/// Device offset of the superblock's `undo_gen` field.
fn undo_gen_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, undo_gen) as u64
}

/// Device offset of the superblock's `root` field.
fn root_off() -> u64 {
    std::mem::offset_of!(SuperblockHeader, root) as u64
}

/// The superblock's undo-log area.
pub(crate) fn undo_area() -> UndoArea {
    UndoArea { base: SB_UNDO_OFF, size: SB_UNDO_SIZE, gen_field: undo_gen_off() }
}

/// Directory-entry state of a sub-heap condemned online after a live
/// media fault. Recovery honours it without touching the region;
/// `pfsck --repair` rebuilds the metadata and resets the entry to 1.
pub(crate) const DIR_QUARANTINED: u32 = 2;

/// Device offset of sub-heap `sub`'s directory entry.
pub(crate) fn dir_entry_off(sub: u16) -> u64 {
    SB_DIR_OFF + sub as u64 * 8
}

/// Reads sub-heap `sub`'s directory entry.
pub(crate) fn dir_entry(dev: &PmemDevice, sub: u16) -> Result<DirEntry> {
    Ok(dev.read_pod(dir_entry_off(sub))?)
}

/// Publishes sub-heap `sub` as created (8-byte atomic persisted store —
/// the commit point of sub-heap creation).
pub(crate) fn publish_subheap(dev: &PmemDevice, sub: u16, entry: DirEntry) -> Result<()> {
    dev.write_pod(dir_entry_off(sub), &entry)?;
    dev.persist(dir_entry_off(sub), 8)?;
    Ok(())
}

/// Writes a fresh superblock for `layout` with identity `heap_id`.
///
/// The magic is written *last*, after everything else (directory zeroed,
/// header persisted), so a crash mid-creation leaves a device that does
/// not claim to be a Poseidon heap and is simply re-created next time.
pub(crate) fn create(dev: &PmemDevice, layout: &HeapLayout, heap_id: u64) -> Result<()> {
    let header = SuperblockHeader {
        magic: 0, // published below
        version: FORMAT_VERSION,
        heap_id,
        capacity: layout.capacity,
        num_subheaps: layout.num_subheaps as u32,
        meta_size: layout.meta_size,
        user_size: layout.user_size,
        c0: layout.c0,
        huge_data_size: layout.huge_data_size,
        undo_gen: 0,
        root: NvmPtr::NULL,
        _pad0: 0,
        _pad1: 0,
    };
    dev.write_pod(0, &header)?;
    // Zero the directory.
    dev.write(SB_DIR_OFF, &vec![0u8; layout.num_subheaps as usize * 8])?;
    dev.persist(0, SB_DIR_OFF + layout.num_subheaps as u64 * 8)?;
    dev.write_pod(0, &SUPERBLOCK_MAGIC)?;
    dev.persist(0, 8)?;
    Ok(())
}

/// Loads and validates an existing superblock, reconstructing the heap
/// geometry it was created with.
///
/// # Errors
///
/// [`PoseidonError::Corrupted`] if the header is missing, from a
/// different format version, or inconsistent with the device.
pub(crate) fn load(dev: &PmemDevice) -> Result<(SuperblockHeader, HeapLayout)> {
    let header: SuperblockHeader = dev.read_pod(0)?;
    if header.magic != SUPERBLOCK_MAGIC {
        return Err(PoseidonError::Corrupted("no Poseidon superblock on this device"));
    }
    if header.version != FORMAT_VERSION {
        return Err(PoseidonError::Corrupted("unsupported format version"));
    }
    if header.capacity > dev.capacity() {
        return Err(PoseidonError::Corrupted("heap larger than the device holding it"));
    }
    if header.heap_id == 0 || header.num_subheaps == 0 || header.num_subheaps > u16::MAX as u32 {
        return Err(PoseidonError::Corrupted("implausible superblock identity"));
    }
    let layout = HeapLayout {
        capacity: header.capacity,
        num_subheaps: header.num_subheaps as u16,
        meta_size: header.meta_size,
        user_size: header.user_size,
        c0: header.c0,
        huge_data_size: header.huge_data_size,
    };
    // Geometry must be self-consistent.
    let recomputed = HeapLayout::compute(header.capacity, layout.num_subheaps)?;
    if recomputed != layout {
        return Err(PoseidonError::Corrupted("superblock geometry does not match this build"));
    }
    Ok((header, layout))
}

/// Reads the root pointer.
pub(crate) fn root(dev: &PmemDevice) -> Result<NvmPtr> {
    Ok(dev.read_pod(root_off())?)
}

/// Sets the root pointer through the superblock undo log (a 16-byte
/// value cannot be stored atomically, §5.8 machinery covers it).
/// Caller holds the superblock lock and the MPK write guard.
pub(crate) fn set_root(dev: &PmemDevice, ptr: NvmPtr) -> Result<()> {
    let mut session = undo::UndoSession::begin(dev, undo_area())?;
    session.log_and_write_pod(root_off(), &ptr)?;
    session.commit()
}

/// Persistently condemns sub-heap `sub` after a live media fault: its
/// directory entry flips to [`DIR_QUARANTINED`] under the superblock
/// undo log's two-fence commit, so the verdict is crash-atomic and
/// every future load sees the sub-heap as quarantined. Caller holds the
/// superblock lock and the MPK write guard. Idempotent.
pub(crate) fn quarantine_subheap(dev: &PmemDevice, sub: u16) -> Result<()> {
    let entry = dir_entry(dev, sub)?;
    if entry.state == DIR_QUARANTINED {
        return Ok(());
    }
    let mut session = undo::UndoSession::begin(dev, undo_area())?;
    session.log_and_write_pod(dir_entry_off(sub), &DirEntry { state: DIR_QUARANTINED, node: entry.node })?;
    session.commit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn setup() -> (PmemDevice, HeapLayout) {
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        (dev, layout)
    }

    #[test]
    fn create_then_load_roundtrips_geometry() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        let (header, loaded) = load(&dev).unwrap();
        assert_eq!(header.heap_id, 0xABCD);
        assert_eq!(loaded, layout);
    }

    #[test]
    fn load_rejects_blank_device() {
        let (dev, _) = setup();
        assert!(matches!(load(&dev), Err(PoseidonError::Corrupted(_))));
    }

    #[test]
    fn crash_during_creation_leaves_no_heap() {
        let (dev, layout) = setup();
        // Crash before the magic is persisted.
        dev.arm_crash_after(3);
        let _ = create(&dev, &layout, 0xABCD);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert!(matches!(load(&dev), Err(PoseidonError::Corrupted(_))));
        // Re-creation succeeds.
        create(&dev, &layout, 0xABCD).unwrap();
        load(&dev).unwrap();
    }

    #[test]
    fn root_set_is_crash_atomic() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        set_root(&dev, NvmPtr::new(0xABCD, 1, 64)).unwrap();
        assert_eq!(root(&dev).unwrap().offset(), 64);

        // Interrupt a second update mid-way; replay must restore the old
        // value, never expose a half-written pointer.
        dev.arm_crash_after(4);
        let _ = set_root(&dev, NvmPtr::new(0xABCD, 0, 128));
        dev.simulate_crash(CrashMode::Strict, 0);
        undo::replay(&dev, undo_area()).unwrap();
        let r = root(&dev).unwrap();
        assert!(
            (r.subheap() == 1 && r.offset() == 64) || (r.subheap() == 0 && r.offset() == 128),
            "torn root pointer: {r}"
        );
    }

    #[test]
    fn quarantine_subheap_is_persistent_and_idempotent() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        publish_subheap(&dev, 1, DirEntry { state: 1, node: 7 }).unwrap();
        quarantine_subheap(&dev, 1).unwrap();
        let e = dir_entry(&dev, 1).unwrap();
        assert_eq!(e.state, DIR_QUARANTINED);
        assert_eq!(e.node, 7, "the NUMA node survives condemnation");
        // Idempotent: a second condemnation is a no-op, not an error.
        quarantine_subheap(&dev, 1).unwrap();
        assert_eq!(dir_entry(&dev, 1).unwrap().state, DIR_QUARANTINED);

        // Crash-atomic: interrupt a condemnation of sub-heap 0 mid-way;
        // after replay the entry is either fully old or fully new.
        dev.arm_crash_after(4);
        let _ = quarantine_subheap(&dev, 0);
        dev.simulate_crash(CrashMode::Strict, 0);
        undo::replay(&dev, undo_area()).unwrap();
        let e = dir_entry(&dev, 0).unwrap();
        assert!(e.state == 0 || e.state == DIR_QUARANTINED, "torn directory entry: {}", e.state);
    }

    #[test]
    fn publish_subheap_is_visible() {
        let (dev, layout) = setup();
        create(&dev, &layout, 0xABCD).unwrap();
        assert_eq!(dir_entry(&dev, 1).unwrap().state, 0);
        publish_subheap(&dev, 1, DirEntry { state: 1, node: 1 }).unwrap();
        let e = dir_entry(&dev, 1).unwrap();
        assert_eq!(e.state, 1);
        assert_eq!(e.node, 1);
    }
}
