//! Background maintenance engine: budgeted incremental defragmentation
//! driven by live fragmentation statistics.
//!
//! The whole-heap [`defragment`](PoseidonHeap::defragment) pass is a
//! stop-the-world affair — unusable inside a serving loop. This module
//! is the incremental replacement, shaped like the scrubber
//! ([`PoseidonHeap::scrub_step`]): a session-persistent cursor walks the
//! same unit partition (one unit per sub-heap, plus one for the huge
//! region) and each [`maint_step`](PoseidonHeap::maint_step) performs at
//! most `budget` bounded *units of work* before returning.
//!
//! A unit of work is one committed metadata operation under the ordinary
//! two-fence undo discipline, so a crash after any unit recovers exactly
//! like a crash after any alloc or free:
//!
//! * **buddy merge** — one [`defrag::merge_once`] scope: unlink both
//!   halves, delete the loser's record, push the doubled survivor;
//! * **table shrink** — one [`hashtable::shrink_one`] scope: retire the
//!   empty top level and hole-punch its slots;
//! * **cache trim** — handing a sub-heap's cold cached blocks back to
//!   the free lists (only under pressure: trimming a warm cache costs
//!   fast-path hits), which re-arms them for merging.
//!
//! The huge region needs no active work — extent coalescing is eager up
//! to band walls on every huge free — so its unit is a read-only scan
//! that refreshes the cached largest-free-extent figure
//! ([`PoseidonHeap::huge_largest_free`]), fixing the historical wart
//! that the figure was observable only inside a
//! [`TooLarge`](crate::PoseidonError::TooLarge) failure.
//!
//! **Trigger policy** ([`PoseidonHeap::maint_needed`]): the engine
//! self-schedules from two inputs, mirroring how the growth pressure
//! flag works. A `NoSpace`/`TooLarge` failure on the alloc paths sets a
//! pressure flag (cleared by the first fully-clean maintenance pass),
//! and the always-on fragmentation accounting
//! ([`PoseidonHeap::fragmentation`]) caches watermark inputs: when a
//! quarter of the sub-heap free bytes sit in buddy pairs that could
//! merge but have not (the deferred-coalescing debt), maintenance is
//! due. [`PoseidonHeap::maint_tick`] packages the policy check and the
//! step for serving loops.

use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::buddy;
use crate::defrag;
use crate::error::{OpKind, PoseidonError, Result};
use crate::hashtable;
use crate::heap::PoseidonHeap;
use crate::layout::{class_for_size, class_size, HUGE_EXTENT_SLOTS, NUM_CLASSES};
use crate::persist::{state, FLAG_CACHED};

/// Free-space accounting for one buddy size class of one sub-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassFrag {
    /// The class's block size in bytes (`32 << class`).
    pub block_size: u64,
    /// Free blocks of this class (cache-withdrawn blocks excluded: they
    /// are in the cache's hands, not coalescable).
    pub free_blocks: u64,
    /// Bytes covered by those blocks.
    pub free_bytes: u64,
    /// Bytes in the largest run of *adjacent* free blocks of this class
    /// — the most this class could hand upward by coalescing in place.
    pub largest_run: u64,
    /// Bytes sitting in buddy pairs that are mergeable *right now* but
    /// not yet merged — the deferred-coalescing debt the maintenance
    /// engine retires. Exactly zero after a maintenance pass runs to
    /// completion; grows as churn strands free buddies side by side.
    pub frag_bytes: u64,
}

/// Fragmentation accounting for one sub-heap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubheapFrag {
    /// The sub-heap index.
    pub subheap: u16,
    /// Total free blocks on the buddy lists.
    pub free_blocks: u64,
    /// Total free bytes on the buddy lists.
    pub free_bytes: u64,
    /// Size of the largest single free block — the biggest allocation
    /// this sub-heap could serve right now without any merging.
    pub largest_block: u64,
    /// Sum of the per-class `frag_bytes` debt figures.
    pub frag_bytes: u64,
    /// Per-class breakdown (classes with no free blocks omitted).
    pub per_class: Vec<ClassFrag>,
}

/// Fragmentation accounting for the huge-object region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HugeFrag {
    /// Free extents in the table.
    pub free_extents: u64,
    /// Bytes covered by free extents.
    pub free_bytes: u64,
    /// Largest single free extent — the biggest huge allocation that
    /// would currently succeed (the figure `TooLarge { huge_remaining }`
    /// reports at failure time, now continuously available).
    pub largest_free: u64,
    /// `free_bytes - largest_free`: huge free space unusable by a
    /// maximal request. Eager coalescing already merged what it could;
    /// what remains is split across band walls or pinned by live
    /// extents.
    pub frag_bytes: u64,
}

/// The always-on fragmentation report ([`PoseidonHeap::fragmentation`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FragmentationReport {
    /// Per-sub-heap accounting (uncreated/quarantined sub-heaps omitted).
    pub subheaps: Vec<SubheapFrag>,
    /// Huge-region accounting; `None` when the layout carves no huge
    /// region or recovery quarantined it.
    pub huge: Option<HugeFrag>,
}

impl FragmentationReport {
    /// Total free bytes across sub-heaps and the huge region.
    pub fn free_bytes(&self) -> u64 {
        self.subheaps.iter().map(|s| s.free_bytes).sum::<u64>() + self.huge.map_or(0, |h| h.free_bytes)
    }

    /// Total fragmentation debt (free bytes in not-yet-merged buddy
    /// pairs, summed per class) across the sub-heaps. The huge region's
    /// `frag_bytes` is *not* included: extent coalescing is eager, so
    /// its figure is pinned by live extents and band walls — real, but
    /// nothing maintenance can retire.
    pub fn frag_bytes(&self) -> u64 {
        self.subheaps.iter().map(|s| s.frag_bytes).sum::<u64>()
    }
}

/// What one [`PoseidonHeap::maint_step`] (or an accumulated
/// [`maint_until`](PoseidonHeap::maint_until) run) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintStep {
    /// Unit visits (a unit may be visited more than once per step if the
    /// budget allows a full cycle).
    pub units_visited: u64,
    /// Full passes over every unit completed.
    pub passes_completed: u64,
    /// Committed units of work — never exceeds the step's budget.
    pub work_units: u64,
    /// Buddy merges committed.
    pub merges: u64,
    /// Bytes now covered by merged (doubled) blocks.
    pub bytes_coalesced: u64,
    /// Hash-table levels retired.
    pub table_levels_shrunk: u64,
    /// Table bytes hole-punched back to the device.
    pub table_bytes_released: u64,
    /// Cached blocks handed back to the free lists by trim units.
    pub cache_blocks_trimmed: u64,
    /// Huge-region scans performed (read-only; refresh the cached
    /// largest-free-extent figure).
    pub huge_scans: u64,
    /// Whether the step observed a full clean cycle: every unit visited
    /// back-to-back with no work left to do. The heap is as defragmented
    /// as buddy merging can make it.
    pub fully_defragged: bool,
}

impl MaintStep {
    /// Folds `other` (a later step) into an accumulated total.
    pub fn absorb(&mut self, other: &MaintStep) {
        self.units_visited += other.units_visited;
        self.passes_completed += other.passes_completed;
        self.work_units += other.work_units;
        self.merges += other.merges;
        self.bytes_coalesced += other.bytes_coalesced;
        self.table_levels_shrunk += other.table_levels_shrunk;
        self.table_bytes_released += other.table_bytes_released;
        self.cache_blocks_trimmed += other.cache_blocks_trimmed;
        self.huge_scans += other.huge_scans;
        self.fully_defragged = other.fully_defragged;
    }

    /// Whether the step committed any work at all.
    pub fn found_work(&self) -> bool {
        self.work_units > 0
    }
}

/// Free free-bytes floor below which the watermark trigger stays quiet:
/// defragmenting a nearly-full heap buys nothing.
const TRIGGER_MIN_FREE: u64 = 1 << 20;

impl PoseidonHeap {
    /// Computes the per-sub-heap, per-size-class fragmentation report:
    /// free blocks versus the largest coalescable run per class, plus
    /// the huge region's largest free extent. Read-only (per-sub-heap
    /// lock held briefly per sub-heap, never all at once) and
    /// proportional to the free-block count — cheap enough to poll from
    /// a serving loop at interval boundaries.
    ///
    /// As a side effect the walk refreshes the cached inputs consulted
    /// by [`maint_needed`](Self::maint_needed) and
    /// [`huge_largest_free`](Self::huge_largest_free).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn fragmentation(&self) -> Result<FragmentationReport> {
        let mut subheaps = Vec::new();
        for sub in 0..self.layout.num_subheaps() {
            if !self.sub_usable(sub) {
                continue;
            }
            let op = self.begin_read_op(sub)?;
            let mut frag = SubheapFrag { subheap: sub, ..Default::default() };
            for k in 0..NUM_CLASSES {
                let size = class_size(k);
                let mut offsets = Vec::new();
                for rec_off in buddy::collect(&op, k)? {
                    let rec = op.entry(rec_off)?;
                    if rec.state != state::FREE || rec.flags & FLAG_CACHED != 0 {
                        continue;
                    }
                    offsets.push(rec.offset);
                }
                if offsets.is_empty() {
                    continue;
                }
                offsets.sort_unstable();
                let mut largest_run = 0u64;
                let mut run = 0u64;
                let mut expect = u64::MAX;
                for off in &offsets {
                    run = if *off == expect { run + size } else { size };
                    expect = off + size;
                    largest_run = largest_run.max(run);
                }
                // Deferred-coalescing debt: sorted neighbours that are
                // XOR-buddies (the exact predicate `merge_once` uses)
                // could merge into the next class right now. Alignment
                // makes counted pairs disjoint, so no double counting.
                let mut debt = 0u64;
                if size * 2 <= self.layout.max_alloc() {
                    for w in offsets.windows(2) {
                        if w[0] ^ size == w[1] {
                            debt += size * 2;
                        }
                    }
                }
                let free_blocks = offsets.len() as u64;
                let free_bytes = free_blocks * size;
                frag.per_class.push(ClassFrag {
                    block_size: size,
                    free_blocks,
                    free_bytes,
                    largest_run,
                    frag_bytes: debt,
                });
                frag.free_blocks += free_blocks;
                frag.free_bytes += free_bytes;
                frag.frag_bytes += debt;
                frag.largest_block = frag.largest_block.max(size);
            }
            subheaps.push(frag);
        }
        let report = FragmentationReport { subheaps, huge: self.huge_fragmentation()? };
        self.health.maint_frag_bytes.store(report.frag_bytes(), Ordering::Relaxed);
        // The watermark ratio compares debt against the free bytes the
        // engine can actually act on — sub-heap space, not huge extents.
        let sub_free: u64 = report.subheaps.iter().map(|s| s.free_bytes).sum();
        self.health.maint_free_bytes.store(sub_free, Ordering::Relaxed);
        Ok(report)
    }

    /// Scans the huge extent table read-only and refreshes the cached
    /// largest-free-extent figure. `None` when there is no (usable)
    /// huge region.
    fn huge_fragmentation(&self) -> Result<Option<HugeFrag>> {
        if self.layout.huge_data_size() == 0 || self.huge_quarantined.load(Ordering::Acquire) {
            return Ok(None);
        }
        let op = self.begin_huge_read()?;
        let mut frag = HugeFrag::default();
        for i in 0..HUGE_EXTENT_SLOTS {
            let rec = op.slot(i)?;
            if rec.state != state::FREE {
                continue;
            }
            frag.free_extents += 1;
            frag.free_bytes += rec.len;
            frag.largest_free = frag.largest_free.max(rec.len);
        }
        frag.frag_bytes = frag.free_bytes - frag.largest_free;
        self.note_huge_largest_free(frag.largest_free);
        Ok(Some(frag))
    }

    /// The largest free huge extent, from the most recent huge scan
    /// (maintenance unit, [`fragmentation`](Self::fragmentation) walk,
    /// or a `TooLarge` failure). `None` when there is no usable huge
    /// region or no scan has sampled it yet. One atomic load — this is
    /// the continuous answer to "would a huge allocation of size `s`
    /// succeed?", available *before* paying for the failure.
    pub fn huge_largest_free(&self) -> Option<u64> {
        if self.layout.huge_data_size() == 0 || self.huge_quarantined.load(Ordering::Acquire) {
            return None;
        }
        self.health
            .maint_huge_sampled
            .load(Ordering::Acquire)
            .then(|| self.health.huge_largest_free.load(Ordering::Relaxed))
    }

    /// Records a freshly observed largest-free-extent figure (huge scans
    /// and `TooLarge` failures both land here).
    pub(crate) fn note_huge_largest_free(&self, largest: u64) {
        self.health.huge_largest_free.store(largest, Ordering::Relaxed);
        self.health.maint_huge_sampled.store(true, Ordering::Release);
    }

    /// Raises the maintenance pressure flag — called by the alloc paths
    /// when space runs out, exactly like the growth pressure signal. The
    /// next fully-clean maintenance pass lowers it.
    pub(crate) fn note_space_pressure(&self) {
        self.health.maint_pressure.store(true, Ordering::Release);
    }

    /// Whether the trigger policy wants maintenance to run now: either
    /// the alloc paths signalled space pressure, or the last
    /// fragmentation sample found more than a quarter of the sub-heap
    /// free bytes sitting in mergeable-but-unmerged buddy pairs. Two
    /// atomic loads.
    pub fn maint_needed(&self) -> bool {
        if self.health.maint_pressure.load(Ordering::Acquire) {
            return true;
        }
        let free = self.health.maint_free_bytes.load(Ordering::Relaxed);
        let frag = self.health.maint_frag_bytes.load(Ordering::Relaxed);
        free >= TRIGGER_MIN_FREE && frag.saturating_mul(4) >= free
    }

    /// One self-scheduled maintenance increment: runs
    /// [`maint_step`](Self::maint_step) only when
    /// [`maint_needed`](Self::maint_needed) says the stats call for it.
    /// Serving loops call this every tick and let the trigger policy
    /// decide.
    ///
    /// # Errors
    ///
    /// As [`maint_step`](Self::maint_step).
    pub fn maint_tick(&self, budget: usize) -> Result<Option<MaintStep>> {
        if !self.maint_needed() {
            return Ok(None);
        }
        self.maint_step(budget).map(Some)
    }

    /// One budgeted maintenance increment: resumes at the engine's
    /// cursor and commits at most `budget` units of work — buddy merges,
    /// hash-table level retirements, and (under pressure) cache trims —
    /// each under its own two-fence undo scope, so a crash after any
    /// unit recovers cleanly. The huge region's unit is a read-only scan
    /// refreshing [`huge_largest_free`](Self::huge_largest_free).
    ///
    /// Returns early with `fully_defragged` set when a whole cycle over
    /// every unit found nothing left to do; that also lowers the
    /// pressure flag. Safe to call concurrently with serving traffic —
    /// each unit takes only the ordinary per-sub-heap lock for its own
    /// duration.
    ///
    /// # Errors
    ///
    /// Device errors. Media faults are attributed and quarantined
    /// through the self-healing layer (counted as scrub-path errors)
    /// before surfacing.
    pub fn maint_step(&self, budget: usize) -> Result<MaintStep> {
        match self.maint_step_inner(budget) {
            Err(e @ PoseidonError::MediaError { .. }) => {
                let (e, _) = self.heal_media_error(e, OpKind::Scrub);
                Err(e)
            }
            other => other,
        }
    }

    fn maint_step_inner(&self, budget: usize) -> Result<MaintStep> {
        let n = self.layout.num_subheaps() as u64;
        let units = n + u64::from(self.layout.huge_data_size() > 0);
        let budget = budget.max(1) as u64;
        let aggressive = self.health.maint_pressure.load(Ordering::Acquire);
        let mut step = MaintStep::default();
        let mut clean = 0u64;
        while step.work_units < budget && clean < units {
            let raw = self.health.maint_cursor.load(Ordering::Relaxed);
            let unit = raw % units;
            step.units_visited += 1;
            let left = budget - step.work_units;
            let (spent, drained) = if unit == n {
                self.maint_huge_unit(&mut step)?
            } else {
                self.maint_sub_unit(unit as u16, left, aggressive, &mut step)?
            };
            step.work_units += spent;
            clean = if spent == 0 { clean + 1 } else { 0 };
            if drained {
                // Advance past the drained unit; a concurrent engine may
                // already have moved the cursor, in which case this visit
                // simply doubled up and the cursor stays theirs.
                if self
                    .health
                    .maint_cursor
                    .compare_exchange(raw, raw + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                    && (raw + 1).is_multiple_of(units)
                {
                    self.health.maint_passes.fetch_add(1, Ordering::Relaxed);
                    step.passes_completed += 1;
                }
            }
        }
        step.fully_defragged = clean >= units;
        if step.fully_defragged {
            self.health.maint_pressure.store(false, Ordering::Release);
        }
        self.health.maint_steps.fetch_add(1, Ordering::Relaxed);
        self.health.maint_merges.fetch_add(step.merges, Ordering::Relaxed);
        self.health.maint_levels_shrunk.fetch_add(step.table_levels_shrunk, Ordering::Relaxed);
        self.health.maint_blocks_trimmed.fetch_add(step.cache_blocks_trimmed, Ordering::Relaxed);
        Ok(step)
    }

    /// Works sub-heap `sub` for up to `left` units. Returns the units
    /// spent and whether the unit is *drained* (nothing left that the
    /// remaining budget could not cover — i.e. the visit ended for lack
    /// of work, not lack of budget).
    fn maint_sub_unit(
        &self,
        sub: u16,
        left: u64,
        aggressive: bool,
        step: &mut MaintStep,
    ) -> Result<(u64, bool)> {
        if !self.sub_usable(sub) {
            return Ok((0, true));
        }
        let mut spent = 0u64;
        if aggressive && spent < left {
            // Trim: hand the sub-heap's cold cached blocks back to the
            // free lists so the merge scan below can coalesce them. One
            // unit when anything moved (bounded by the cache's residency,
            // which magazine capacities cap).
            let trimmed = self.evict_subheap_cache(sub)?;
            if trimmed > 0 {
                spent += 1;
                step.cache_blocks_trimmed += trimmed as u64;
            }
        }
        let op = self.begin_op(sub)?;
        'classes: for k in 0..NUM_CLASSES {
            if spent >= left {
                break;
            }
            // Snapshot, then re-validate each record: earlier merges may
            // have consumed or grown entries from this list.
            for rec_off in buddy::collect(&op, k)? {
                if spent >= left {
                    break 'classes;
                }
                let rec = op.entry(rec_off)?;
                if rec.state != state::FREE
                    || rec.flags & FLAG_CACHED != 0
                    || class_for_size(rec.size)?.0 != k
                {
                    continue;
                }
                let mut cur = rec_off;
                while spent < left {
                    match defrag::merge_once(&op, cur)? {
                        Some((surv, size)) => {
                            spent += 1;
                            step.merges += 1;
                            step.bytes_coalesced += size;
                            cur = surv;
                        }
                        None => break,
                    }
                }
            }
        }
        while spent < left {
            match hashtable::shrink_one(&op)? {
                Some(bytes) => {
                    spent += 1;
                    step.table_levels_shrunk += 1;
                    step.table_bytes_released += bytes;
                }
                None => break,
            }
        }
        Ok((spent, spent < left))
    }

    /// The huge region's unit: extent coalescing is eager up to band
    /// walls on every free, so there is never merge work to commit here
    /// — the unit is a read-only scan that refreshes the cached
    /// largest-free-extent figure. Costs no budget and always drains.
    fn maint_huge_unit(&self, step: &mut MaintStep) -> Result<(u64, bool)> {
        if self.huge_fragmentation()?.is_some() {
            step.huge_scans += 1;
        }
        Ok((0, true))
    }

    /// Runs [`maint_step`](Self::maint_step) increments until the heap
    /// is fully defragged or `deadline` passes, yielding between steps.
    /// Returns the accumulated step; check its `fully_defragged` flag to
    /// see which way the run ended.
    ///
    /// [`defragment`](Self::defragment) is this without a deadline on a
    /// pressure-marked heap.
    ///
    /// # Errors
    ///
    /// As [`maint_step`](Self::maint_step).
    pub fn maint_until(&self, deadline: Instant, budget: usize) -> Result<MaintStep> {
        let mut total = MaintStep::default();
        loop {
            let step = self.maint_step(budget)?;
            total.absorb(&step);
            if step.fully_defragged || Instant::now() >= deadline {
                return Ok(total);
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use crate::persist::SubCtx;
    use std::sync::Arc;
    use std::time::Duration;

    use pmem::{DeviceConfig, PmemDevice};

    fn uncached_heap(subheaps: u16) -> PoseidonHeap {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(subheaps).without_cache()).unwrap()
    }

    /// Allocates a checkerboard of small blocks and frees every other
    /// one, leaving plenty of merge candidates behind once the live
    /// half is freed too.
    fn fragment(h: &PoseidonHeap) -> Vec<crate::NvmPtr> {
        let mut live = Vec::new();
        let mut hold = Vec::new();
        for i in 0..256 {
            let p = h.alloc(32 + (i % 4) * 32).unwrap();
            if i % 2 == 0 {
                hold.push(p);
            } else {
                live.push(p);
            }
        }
        for p in live {
            h.free(p).unwrap();
        }
        hold
    }

    #[test]
    fn maint_step_never_exceeds_its_budget() {
        // The acceptance pin: every step's committed work stays within
        // the budget it was given, across budgets and heap states.
        let h = uncached_heap(1);
        let hold = fragment(&h);
        for p in hold {
            h.free(p).unwrap();
        }
        for budget in [1usize, 2, 3, 5, 8] {
            loop {
                let step = h.maint_step(budget).unwrap();
                assert!(
                    step.work_units <= budget as u64,
                    "step spent {} units on a budget of {budget}",
                    step.work_units
                );
                if step.fully_defragged {
                    break;
                }
            }
            // Re-fragment so the next budget has work to do.
            let hold = fragment(&h);
            for p in hold {
                h.free(p).unwrap();
            }
        }
        h.audit().unwrap();
    }

    #[test]
    fn maint_until_converges_to_defragmented() {
        let h = uncached_heap(2);
        let hold = fragment(&h);
        for p in hold {
            h.free(p).unwrap();
        }
        let before = h.fragmentation().unwrap();
        let total = h.maint_until(Instant::now() + Duration::from_secs(30), 4).unwrap();
        assert!(total.fully_defragged, "maint_until hit the deadline instead of converging");
        assert!(total.merges > 0, "a fragmented heap must yield merges");
        let after = h.fragmentation().unwrap();
        assert!(
            after.frag_bytes() < before.frag_bytes(),
            "fragmentation did not drop: {} -> {}",
            before.frag_bytes(),
            after.frag_bytes()
        );
        assert_eq!(after.frag_bytes(), 0, "a converged heap must owe no coalescing debt");
        h.audit().unwrap();
    }

    #[test]
    fn fragmentation_agrees_with_the_audit() {
        let h = uncached_heap(2);
        let _hold = fragment(&h);
        let frag = h.fragmentation().unwrap();
        let audit = h.audit().unwrap();
        let audit_free: u64 = audit.iter().map(|(_, a)| a.free_bytes).sum();
        assert_eq!(frag.free_bytes(), audit_free + frag.huge.map_or(0, |f| f.free_bytes));
        for s in &frag.subheaps {
            let (_, a) = audit.iter().find(|(sub, _)| *sub == s.subheap).unwrap();
            assert_eq!(s.free_bytes, a.free_bytes, "sub {} free bytes disagree", s.subheap);
            assert!(s.frag_bytes <= s.free_bytes);
            for c in &s.per_class {
                assert!(c.largest_run >= c.block_size);
                assert!(c.largest_run <= c.free_bytes);
            }
        }
    }

    #[test]
    fn huge_largest_free_is_continuously_exposed() {
        // The satellite fix: the figure TooLarge reports at failure time
        // is now readable at any time, and tracks the huge audit.
        let h = uncached_heap(2);
        assert!(h.layout().huge_data_size() > 0, "test device must carve a huge region");
        assert_eq!(h.huge_largest_free(), None, "unsampled figure must read None");
        h.fragmentation().unwrap();
        let audit = h.huge_audit().unwrap().unwrap();
        assert_eq!(h.huge_largest_free(), Some(audit.largest_free));
        // Carve a huge allocation and re-sample via a maintenance step:
        // the cached figure follows.
        let p = h.alloc(h.layout().max_alloc() + 1).unwrap();
        let mut step = MaintStep::default();
        while step.huge_scans == 0 {
            step.absorb(&h.maint_step(8).unwrap());
        }
        let audit = h.huge_audit().unwrap().unwrap();
        assert_eq!(h.huge_largest_free(), Some(audit.largest_free));
        h.free(p).unwrap();
    }

    #[test]
    fn maintenance_drives_table_shrink_starved_by_cached_frees() {
        // The satellite fix for the PR 3 shrink probe: when frees land
        // only on the cached fast path, free_slow never runs and an
        // empty top level stays active indefinitely. The maintenance
        // engine must retire it. Stage the empty-but-active top level by
        // hand (unprotected heap so the test can write metadata
        // directly), mirroring shrink_runs_on_free_not_on_alloc.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2).without_protection()).unwrap();
        let p = h.alloc(64).unwrap(); // creates sub-heap 0, warms the magazine
        let ctx = SubCtx { dev: h.device(), layout: h.layout(), sub: 0 };
        h.device().write_pod(ctx.active_levels_off(), &2u64).unwrap();
        h.device().write_pod(ctx.level_count_off(1), &0u64).unwrap();

        // A cached free: absorbed by the magazine, shrink probe starved.
        h.free(p).unwrap();
        assert_eq!(
            h.device().read_pod::<u64>(ctx.active_levels_off()).unwrap(),
            2,
            "cached fast-path free must not have probed the table (else this pins nothing)"
        );

        let mut total = MaintStep::default();
        loop {
            let step = h.maint_step(4).unwrap();
            total.absorb(&step);
            if step.fully_defragged {
                break;
            }
        }
        assert!(total.table_levels_shrunk >= 1, "maintenance did not retire the empty level");
        assert_eq!(
            h.device().read_pod::<u64>(ctx.active_levels_off()).unwrap(),
            1,
            "empty top level still active after maintenance"
        );
        assert!(h.health().maint_table_levels_shrunk >= 1);
    }

    #[test]
    fn pressure_trims_the_cache_and_clears_on_clean_pass() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(1)).unwrap();
        // Park freed blocks in the magazines.
        let ptrs: Vec<_> = (0..32).map(|_| h.alloc(64).unwrap()).collect();
        for p in ptrs {
            h.free(p).unwrap();
        }
        assert!(!h.maint_needed());
        h.note_space_pressure();
        assert!(h.maint_needed(), "pressure must schedule maintenance");
        let mut total = MaintStep::default();
        loop {
            let step = h.maint_step(16).unwrap();
            total.absorb(&step);
            if step.fully_defragged {
                break;
            }
        }
        assert!(total.cache_blocks_trimmed > 0, "pressure pass must trim the cold cache");
        assert!(!h.maint_needed(), "a clean pass must lower the pressure flag");
        h.audit().unwrap();
    }
}
