//! The huge-object region: an extent allocator for allocations beyond
//! what a sub-heap can serve.
//!
//! Poseidon's buddy classes top out at [`HeapLayout::max_alloc`] — the
//! largest power of two fitting one sub-heap's user region. Requests
//! above that are routed here: a dedicated region at the tail of the
//! device (see `layout`'s diagram), managed by a flat **extent table**
//! instead of the multi-level hash table, because huge objects are few,
//! large, and long-lived — a 1024-slot table scanned linearly beats a
//! hash table sized for millions of 32-byte blocks.
//!
//! The table's invariant mirrors the sub-heap block records: non-empty
//! slots, *sorted by offset*, tile the whole data region — every byte
//! belongs to exactly one `FREE`, `ALLOC`, or `QUARANTINED` extent.
//! Physical slot order is arbitrary (slots are claimed and vacated as
//! extents split and coalesce); the sorted view is reconstructed by
//! scanning. Because allocated extents are recorded too, `free` and
//! `block_size` validate huge pointers exactly like sub-heap pointers:
//! double frees and invalid frees are rejected before they can corrupt
//! the table.
//!
//! Allocation is first fit over the *lowest-offset* free extent that
//! fits (page-granular), splitting off the remainder; freeing coalesces
//! with free neighbours eagerly, so adjacent free extents never persist
//! and fragmentation stays bounded by the live-object pattern. Every
//! mutation goes through the same batched two-fence undo log as sub-heap
//! metadata ([`UndoScope::begin_raw`] on the region's own log area), so
//! a crash at any point is rolled back by the ordinary device-backed
//! replay on the next load.
//!
//! Metadata lives in the MPK-protected prefix; data pages are punched
//! back to the device on free. Extents overlapping uncorrectable media
//! errors are flipped to `QUARANTINED` (recovery splits poisoned spans
//! out of free extents) and only `pfsck --repair` releases them.
//!
//! [`HeapLayout::max_alloc`]: crate::layout::HeapLayout::max_alloc

use std::cell::RefCell;

use mpk::PkruGuard;
use pmem::contention::TrackedGuard;
use pmem::{AccessKind, MetaView, PmemDevice, PoisonRange, PAGE_SIZE};

use crate::error::{PoseidonError, Result};
use crate::layout::{
    HeapLayout, EXTENT_RECORD_SIZE, HUGE_EXTENT_SLOTS, HUGE_META_SIZE, HUGE_TABLE_OFF, HUGE_UNDO_OFF,
    HUGE_UNDO_SIZE, MICRO_LOG_CAPACITY,
};
use crate::nvmptr::NvmPtr;
use crate::persist::{state, ExtentRecord, HugeCtx, HugeHeader, SubCtx, FORMAT_VERSION, HUGE_MAGIC};
use crate::quarantine;
use crate::session::UndoScope;
use crate::undo::StagedWrites;

/// Sentinel sub-heap id embedded in huge-object pointers: `u16::MAX`
/// never names a real sub-heap (the directory is capped below it), so a
/// pointer carrying it is routed to the extent allocator by every heap
/// entry point (`free`, `block_size`, `realloc`, recovery).
pub(crate) const HUGE_SUBHEAP: u16 = u16::MAX;

/// One operation's session on the huge region — the extent allocator's
/// analogue of `OpSession`: a [`MetaView`] over the huge metadata
/// (validated once), the staged-write overlay of the open undo scope,
/// and optionally the huge-region lock and the PKRU write guard.
#[derive(Debug)]
pub(crate) struct HugeOp<'a> {
    pub(crate) ctx: HugeCtx<'a>,
    view: MetaView<'a>,
    staged: RefCell<StagedWrites>,
    // Field order is drop order: view stats flush under the lock, then
    // the lock releases, then write access is revoked.
    _lock: Option<TrackedGuard<'a, ()>>,
    _pkru: Option<PkruGuard<'a>>,
}

impl<'a> HugeOp<'a> {
    fn map(
        ctx: HugeCtx<'a>,
        view_base: u64,
        view_size: u64,
        kind: AccessKind,
        lock: Option<TrackedGuard<'a, ()>>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<HugeOp<'a>> {
        debug_assert!(ctx.layout.huge_data_size() > 0, "no huge region on this layout");
        let view = ctx.dev.map_meta(view_base, view_size, kind)?;
        Ok(HugeOp { ctx, view, staged: RefCell::new(Vec::new()), _lock: lock, _pkru: pkru })
    }

    /// A write session owning the huge-region lock guard and (when
    /// metadata protection is on) the PKRU write guard.
    pub fn guarded(
        ctx: HugeCtx<'a>,
        lock: TrackedGuard<'a, ()>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<HugeOp<'a>> {
        Self::map(ctx, ctx.meta_base(), HUGE_META_SIZE, AccessKind::Write, Some(lock), pkru)
    }

    /// A write session whose view *spans* from sub-heap `sub`'s metadata
    /// up to the end of the huge metadata — used by transactional huge
    /// allocation, which must log the extent writes and the sub-heap's
    /// micro-log append in **one** undo scope (the undo log stores
    /// absolute targets, so device-backed replay restores both regions).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::MediaError`] if any metadata page in the span is
    /// poisoned — including an unrelated sub-heap's between `sub` and the
    /// huge metadata. Transactional huge allocation degrades in that
    /// (already-quarantined) situation; plain huge allocation does not.
    pub fn spanning(
        ctx: HugeCtx<'a>,
        sub: u16,
        lock: TrackedGuard<'a, ()>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<HugeOp<'a>> {
        let base = ctx.layout.meta_base(sub);
        Self::map(ctx, base, ctx.layout.meta_end() - base, AccessKind::Write, Some(lock), pkru)
    }

    /// A write session without guards, for callers that already hold
    /// them (formatting, recovery) and for module tests.
    pub fn unguarded(ctx: HugeCtx<'a>) -> Result<HugeOp<'a>> {
        Self::map(ctx, ctx.meta_base(), HUGE_META_SIZE, AccessKind::Write, None, None)
    }

    /// A read-only session holding the huge-region lock but no PKRU
    /// grant (metadata pages rest readable).
    pub fn read_only(ctx: HugeCtx<'a>, lock: TrackedGuard<'a, ()>) -> Result<HugeOp<'a>> {
        Self::map(ctx, ctx.meta_base(), HUGE_META_SIZE, AccessKind::Read, Some(lock), None)
    }

    /// Reads a [`pmem::Pod`] value through the view, patched with the
    /// open scope's staged writes.
    pub fn read_pod<T: pmem::Pod>(&self, offset: u64) -> Result<T> {
        let mut value = T::zeroed();
        self.view.read(offset, value.as_bytes_mut())?;
        crate::undo::overlay_patch(&self.staged.borrow(), offset, value.as_bytes_mut());
        Ok(value)
    }

    /// Reads extent-table slot `slot` (overlay-patched).
    pub fn slot(&self, slot: usize) -> Result<ExtentRecord> {
        self.read_pod(self.ctx.slot_off(slot))
    }

    /// Opens an undo scope on the huge region's log area.
    ///
    /// # Errors
    ///
    /// As for [`UndoScope::begin_raw`].
    pub fn undo(&self) -> Result<UndoScope<'_, 'a>> {
        UndoScope::begin_raw(&self.view, &self.staged, self.ctx.undo_area(), self._lock.is_some())
    }
}

/// Shorthand for building an [`ExtentRecord`].
fn extent(offset: u64, len: u64, state: u32) -> ExtentRecord {
    ExtentRecord { offset, len, state, _pad: 0, _reserved: 0 }
}

/// The empty record written to vacated slots.
fn empty_slot() -> ExtentRecord {
    extent(0, 0, state::EMPTY)
}

/// Formats the huge region on a fresh device: header (magic published
/// last, mirroring the superblock), a clean undo log, and an extent
/// table holding one `FREE` extent covering the whole data region. A
/// no-op when the layout carves no huge region.
///
/// Runs *before* `superblock::create`, so the superblock magic remains
/// the heap's single last-published commit point: a crash mid-format
/// leaves a device that is simply re-created next time.
pub(crate) fn format(dev: &PmemDevice, layout: &HeapLayout) -> Result<()> {
    if layout.huge_data_size() == 0 {
        return Ok(());
    }
    let ctx = HugeCtx { dev, layout };
    let base = ctx.meta_base();
    let header = HugeHeader {
        magic: 0, // published below
        version: FORMAT_VERSION,
        _pad: 0,
        undo_gen: 0,
        data_size: layout.huge_data_size(),
    };
    dev.write_pod(base, &header)?;
    dev.punch_hole(base + HUGE_UNDO_OFF, HUGE_UNDO_SIZE)?;
    dev.write(base + HUGE_TABLE_OFF, &vec![0u8; (HUGE_EXTENT_SLOTS as u64 * EXTENT_RECORD_SIZE) as usize])?;
    // One FREE extent per band (a fresh heap has exactly one; the shape
    // stays general for module tests that format grown layouts).
    for (i, band) in layout.huge_bands().iter().enumerate() {
        dev.write_pod(ctx.slot_off(i), &extent(band.logical, band.len, state::FREE))?;
    }
    dev.persist(base, HUGE_META_SIZE)?;
    dev.write_pod(base, &HUGE_MAGIC)?;
    dev.persist(base, 8)?;
    Ok(())
}

/// Validates the huge-region header against the loaded geometry. The
/// recorded `data_size` may *lag* the layout's logical total — a crash
/// between an epoch commit and its band bookkeeping leaves exactly that
/// — but must then land on a band boundary;
/// [`extend_to_layout`] closes the gap idempotently during recovery.
///
/// # Errors
///
/// [`PoseidonError::Corrupted`] on a missing or inconsistent header.
pub(crate) fn validate(ctx: &HugeCtx<'_>) -> Result<()> {
    let header = ctx.header()?;
    if header.magic != HUGE_MAGIC {
        return Err(PoseidonError::Corrupted("no huge-region header where the layout expects one"));
    }
    let boundary = ctx
        .layout
        .huge_bands()
        .iter()
        .any(|b| b.logical == header.data_size || b.logical + b.len == header.data_size);
    if header.version != FORMAT_VERSION || !boundary {
        return Err(PoseidonError::Corrupted("huge-region header disagrees with the superblock"));
    }
    Ok(())
}

/// Device offset of the huge header's `data_size` field.
fn data_size_off(ctx: &HugeCtx<'_>) -> u64 {
    ctx.meta_base() + std::mem::offset_of!(HugeHeader, data_size) as u64
}

/// Brings the extent table up to the layout's logical total after a
/// grow: every band starting at or past the recorded `data_size` gets a
/// fresh `FREE` extent, and `data_size` is bumped to the total — all in
/// one undo scope, so the bookkeeping is crash-atomic and **idempotent**
/// (recovery re-runs it after a crash between the epoch commit and this
/// completion). Returns the bytes added. A no-op when nothing lags.
///
/// # Errors
///
/// [`PoseidonError::TableFull`] when no vacant slot can hold a new
/// band's extent.
pub(crate) fn extend_to_layout(op: &HugeOp<'_>) -> Result<u64> {
    let target = op.ctx.layout.huge_data_size();
    let recorded = op.ctx.header()?.data_size;
    if recorded >= target {
        return Ok(0);
    }
    let mut vacant = Vec::new();
    for i in 0..HUGE_EXTENT_SLOTS {
        if op.slot(i)?.state == state::EMPTY {
            vacant.push(i);
        }
    }
    let mut spare = vacant.into_iter();
    let mut scope = op.undo()?;
    let mut added = 0u64;
    for band in op.ctx.layout.huge_bands() {
        if band.logical < recorded {
            continue;
        }
        let slot = spare.next().ok_or(PoseidonError::TableFull)?;
        scope.log_and_write_pod(op.ctx.slot_off(slot), &extent(band.logical, band.len, state::FREE))?;
        added += band.len;
    }
    scope.log_and_write_pod(data_size_off(&op.ctx), &target)?;
    scope.commit()?;
    Ok(added)
}

/// What transactional huge allocation must append to the owning
/// sub-heap's micro log, inside the same undo scope as the extent
/// writes (see [`HugeOp::spanning`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroHook {
    /// Heap id to embed in the logged pointer.
    pub heap_id: u64,
    /// Sub-heap whose micro log records the transaction.
    pub sub: u16,
    /// The transaction's claimed micro-log slot.
    pub slot: usize,
}

/// Allocates a page-granular extent of at least `size` bytes: first fit
/// over the lowest-offset free extent that fits, splitting the
/// remainder into a vacant slot. With `micro`, additionally appends the
/// resulting pointer to the transaction's micro log **in the same undo
/// scope** (the session must be [`HugeOp::spanning`]). Returns the
/// extent's offset within the data region.
///
/// # Errors
///
/// [`PoseidonError::ZeroSize`]; [`PoseidonError::TooLarge`] (reporting
/// the largest free extent) when nothing fits;
/// [`PoseidonError::TableFull`] when a split needs a slot and none is
/// vacant; [`PoseidonError::TxTooLarge`] when the micro slot is full.
pub(crate) fn alloc(op: &HugeOp<'_>, size: u64, micro: Option<MicroHook>) -> Result<u64> {
    if size == 0 {
        return Err(PoseidonError::ZeroSize);
    }
    let need = size.checked_add(PAGE_SIZE - 1).map_or(u64::MAX, |v| v & !(PAGE_SIZE - 1));
    let mut best: Option<(usize, ExtentRecord)> = None;
    let mut largest_free = 0u64;
    let mut vacant = None;
    for i in 0..HUGE_EXTENT_SLOTS {
        let rec = op.slot(i)?;
        if rec.state == state::EMPTY {
            if vacant.is_none() {
                vacant = Some(i);
            }
            continue;
        }
        if rec.state != state::FREE {
            continue;
        }
        largest_free = largest_free.max(rec.len);
        let lower = match best {
            None => true,
            Some((_, b)) => rec.offset < b.offset,
        };
        if rec.len >= need && lower {
            best = Some((i, rec));
        }
    }
    let Some((slot, rec)) = best else {
        return Err(PoseidonError::TooLarge {
            requested: size,
            subheap_max: op.ctx.layout.max_alloc(),
            huge_remaining: largest_free,
        });
    };
    if rec.len > need && vacant.is_none() {
        return Err(PoseidonError::TableFull);
    }
    let mut scope = op.undo()?;
    scope.log_and_write_pod(op.ctx.slot_off(slot), &extent(rec.offset, need, state::ALLOC))?;
    if rec.len > need {
        let spare = vacant.expect("checked above");
        scope.log_and_write_pod(
            op.ctx.slot_off(spare),
            &extent(rec.offset + need, rec.len - need, state::FREE),
        )?;
    }
    if let Some(hook) = micro {
        let sctx = SubCtx { dev: op.ctx.dev, layout: op.ctx.layout, sub: hook.sub };
        let count_off = sctx.micro_count_off(hook.slot);
        let n: u64 = op.read_pod(count_off)?;
        if n as usize >= MICRO_LOG_CAPACITY {
            // The scope drops here and rolls the extent writes back.
            return Err(PoseidonError::TxTooLarge { max: MICRO_LOG_CAPACITY });
        }
        let ptr = NvmPtr::new(hook.heap_id, HUGE_SUBHEAP, rec.offset);
        scope.log_and_write_pod(sctx.micro_entry_off(hook.slot, n), &ptr)?;
        scope.log_and_write_pod(count_off, &(n + 1))?;
    }
    scope.commit()?;
    Ok(rec.offset)
}

/// Frees the allocated extent starting at `offset`, coalescing with
/// free neighbours (absorbed slots are vacated). If the extent's data
/// pages carry uncorrectable poison it is flipped to `QUARANTINED`
/// instead — never back into circulation. Returns the extent's length.
///
/// # Errors
///
/// [`PoseidonError::DoubleFree`] if the extent is already free;
/// [`PoseidonError::InvalidFree`] if no allocated extent starts at
/// `offset` (including quarantined ones).
pub(crate) fn free(op: &HugeOp<'_>, offset: u64) -> Result<u64> {
    let mut target = None;
    for i in 0..HUGE_EXTENT_SLOTS {
        let rec = op.slot(i)?;
        if rec.state == state::EMPTY || rec.offset != offset {
            continue;
        }
        match rec.state {
            state::ALLOC => target = Some((i, rec)),
            state::FREE => return Err(PoseidonError::DoubleFree { offset }),
            _ => return Err(PoseidonError::InvalidFree { offset }),
        }
        break;
    }
    let Some((slot, rec)) = target else {
        return Err(PoseidonError::InvalidFree { offset });
    };
    let data = op
        .ctx
        .data_phys(rec.offset, rec.len)
        .ok_or(PoseidonError::Corrupted("huge extent straddles a band wall"))?;
    if op.ctx.dev.is_poisoned(data, rec.len) {
        let mut scope = op.undo()?;
        scope.log_and_write_pod(op.ctx.slot_off(slot), &extent(rec.offset, rec.len, state::QUARANTINED))?;
        scope.commit()?;
        return Ok(rec.len);
    }
    // Coalesce with the free neighbours (at most one on each side — the
    // tiling invariant plus eager coalescing guarantee it). Band walls
    // are hard boundaries: logically adjacent extents in different bands
    // are physically disjoint, so coalescing never crosses one.
    let (band_lo, band_hi) = op
        .ctx
        .layout
        .huge_band_bounds(rec.offset)
        .ok_or(PoseidonError::Corrupted("huge extent outside every band"))?;
    let mut prev = None;
    let mut next = None;
    for i in 0..HUGE_EXTENT_SLOTS {
        let r = op.slot(i)?;
        if r.state != state::FREE {
            continue;
        }
        if r.offset + r.len == rec.offset && r.offset >= band_lo {
            prev = Some((i, r));
        } else if r.offset == rec.offset + rec.len && r.offset < band_hi {
            next = Some((i, r));
        }
    }
    let mut start = rec.offset;
    let mut len = rec.len;
    let mut scope = op.undo()?;
    if let Some((i, p)) = prev {
        start = p.offset;
        len += p.len;
        scope.log_and_write_pod(op.ctx.slot_off(i), &empty_slot())?;
    }
    if let Some((i, n)) = next {
        len += n.len;
        scope.log_and_write_pod(op.ctx.slot_off(i), &empty_slot())?;
    }
    scope.log_and_write_pod(op.ctx.slot_off(slot), &extent(start, len, state::FREE))?;
    scope.commit()?;
    // Hand the (poison-free, checked above) data pages back to the device.
    op.ctx.dev.punch_hole(data, rec.len)?;
    Ok(rec.len)
}

/// Finds the live extent starting at exactly `offset` (any state).
pub(crate) fn lookup(op: &HugeOp<'_>, offset: u64) -> Result<Option<ExtentRecord>> {
    for i in 0..HUGE_EXTENT_SLOTS {
        let rec = op.slot(i)?;
        if rec.state != state::EMPTY && rec.offset == offset {
            return Ok(Some(rec));
        }
    }
    Ok(None)
}

/// Splits poisoned spans out of free extents, quarantining them
/// page-granularly (a whole-extent fallback covers a tight table).
/// Returns `(extents_quarantined, bytes_quarantined)`. Allocated
/// extents are left to their owner — `free` quarantines them later.
pub(crate) fn quarantine_poisoned(op: &HugeOp<'_>, poison: &[PoisonRange]) -> Result<(u64, u64)> {
    if poison.is_empty() {
        return Ok((0, 0));
    }
    let phys_of = |rec: &ExtentRecord| op.ctx.data_phys(rec.offset, rec.len);
    let mut extents = 0u64;
    let mut bytes = 0u64;
    // One extent is carved per pass; re-scan until none overlap poison.
    loop {
        let mut found = None;
        let mut vacant = Vec::new();
        for i in 0..HUGE_EXTENT_SLOTS {
            let rec = op.slot(i)?;
            if rec.state == state::EMPTY {
                vacant.push(i);
                continue;
            }
            if rec.state == state::FREE
                && found.is_none()
                && phys_of(&rec).is_some_and(|p| quarantine::overlaps_any(poison, p, rec.len))
            {
                found = Some((i, rec));
            }
        }
        let Some((slot, rec)) = found else {
            return Ok((extents, bytes));
        };
        // The page-rounded hull of all poison inside this extent,
        // computed in device space and mapped back through the extent's
        // band (bands are page-aligned on both sides, so page rounding
        // commutes with the translation).
        let ext_start = phys_of(&rec).expect("overlap check above mapped this extent");
        let ext_end = ext_start + rec.len;
        let mut lo = ext_end;
        let mut hi = ext_start;
        for p in poison.iter().filter(|p| p.overlaps(ext_start, rec.len)) {
            lo = lo.min(p.offset.max(ext_start));
            hi = hi.max((p.offset + p.len).min(ext_end));
        }
        let lo = rec.offset + ((lo - ext_start) & !(PAGE_SIZE - 1));
        let hi = rec.offset + ((hi - ext_start + PAGE_SIZE - 1) & !(PAGE_SIZE - 1));
        let front = lo - rec.offset;
        let tail = rec.offset + rec.len - hi;
        let pieces = usize::from(front > 0) + usize::from(tail > 0);
        let mut scope = op.undo()?;
        if vacant.len() < pieces {
            // No slots to split into: quarantine the whole extent.
            scope
                .log_and_write_pod(op.ctx.slot_off(slot), &extent(rec.offset, rec.len, state::QUARANTINED))?;
            scope.commit()?;
            extents += 1;
            bytes += rec.len;
            continue;
        }
        scope.log_and_write_pod(op.ctx.slot_off(slot), &extent(lo, hi - lo, state::QUARANTINED))?;
        let mut spare = vacant.into_iter();
        if front > 0 {
            let s = spare.next().expect("checked above");
            scope.log_and_write_pod(op.ctx.slot_off(s), &extent(rec.offset, front, state::FREE))?;
        }
        if tail > 0 {
            let s = spare.next().expect("checked above");
            scope.log_and_write_pod(op.ctx.slot_off(s), &extent(hi, tail, state::FREE))?;
        }
        scope.commit()?;
        extents += 1;
        bytes += hi - lo;
    }
}

/// Verified summary of the huge region's extent table, the huge-path
/// analogue of [`SubheapAudit`](crate::subheap::SubheapAudit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HugeAudit {
    /// Number of free extents.
    pub free_extents: u64,
    /// Number of allocated extents.
    pub alloc_extents: u64,
    /// Number of quarantined extents (withdrawn after media errors).
    pub quarantined_extents: u64,
    /// Bytes in free extents.
    pub free_bytes: u64,
    /// Bytes in allocated extents.
    pub alloc_bytes: u64,
    /// Bytes in quarantined extents.
    pub quarantined_bytes: u64,
    /// Largest single free extent — the biggest huge allocation that
    /// would currently succeed.
    pub largest_free: u64,
}

/// Audits the extent table: every live extent page-granular and in a
/// known state, the sorted extents tile `[0, huge_data_size)` exactly
/// (no gaps, no overlaps), and no two free extents are adjacent
/// (coalescing is eager).
///
/// # Errors
///
/// [`PoseidonError::Corrupted`] naming the violated invariant.
pub(crate) fn audit(op: &HugeOp<'_>) -> Result<HugeAudit> {
    let mut live = Vec::new();
    for i in 0..HUGE_EXTENT_SLOTS {
        let rec = op.slot(i)?;
        if rec.state == state::EMPTY {
            continue;
        }
        if rec.len == 0 || rec.offset % PAGE_SIZE != 0 || rec.len % PAGE_SIZE != 0 {
            return Err(PoseidonError::Corrupted("huge extent not page-granular"));
        }
        if !matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED) {
            return Err(PoseidonError::Corrupted("huge extent in an unknown state"));
        }
        live.push(rec);
    }
    live.sort_by_key(|r| r.offset);
    let mut audit = HugeAudit::default();
    let mut cursor = 0u64;
    let mut prev_free = false;
    for rec in &live {
        // Coalescing is eager only *within* a band: a free extent that
        // starts a new band may legally follow a free tail of the
        // previous one (they are physically disjoint).
        if op.ctx.layout.huge_band_bounds(rec.offset).is_some_and(|(lo, _)| lo == rec.offset) {
            prev_free = false;
        }
        if op.ctx.data_phys(rec.offset, rec.len).is_none() {
            return Err(PoseidonError::Corrupted("huge extent straddles a band wall"));
        }
        if rec.offset != cursor {
            return Err(PoseidonError::Corrupted(if rec.offset < cursor {
                "huge extents overlap"
            } else {
                "huge extents leave a coverage gap"
            }));
        }
        cursor = rec
            .offset
            .checked_add(rec.len)
            .ok_or(PoseidonError::Corrupted("huge extent overflows the data region"))?;
        match rec.state {
            state::FREE => {
                if prev_free {
                    return Err(PoseidonError::Corrupted("adjacent free huge extents not coalesced"));
                }
                audit.free_extents += 1;
                audit.free_bytes += rec.len;
                audit.largest_free = audit.largest_free.max(rec.len);
                prev_free = true;
            }
            state::ALLOC => {
                audit.alloc_extents += 1;
                audit.alloc_bytes += rec.len;
                prev_free = false;
            }
            _ => {
                audit.quarantined_extents += 1;
                audit.quarantined_bytes += rec.len;
                prev_free = false;
            }
        }
    }
    // Tiling is checked against the *recorded* data size: between an
    // epoch commit and its band bookkeeping the table legitimately
    // covers only the old total (recovery closes the gap).
    if cursor != op.ctx.header()?.data_size {
        return Err(PoseidonError::Corrupted("huge extents do not cover the data region"));
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        assert!(layout.huge_data_size() > 0);
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        format(&dev, &layout).unwrap();
        (dev, layout)
    }

    #[test]
    fn format_yields_one_free_extent_covering_the_region() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        validate(&ctx).unwrap();
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.free_extents, 1);
        assert_eq!(a.free_bytes, layout.huge_data_size());
        assert_eq!(a.largest_free, layout.huge_data_size());
        assert_eq!(a.alloc_extents + a.quarantined_extents, 0);
    }

    #[test]
    fn alloc_free_roundtrip_splits_and_coalesces() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = alloc(&op, 1 << 20, None).unwrap();
        let b = alloc(&op, (1 << 20) + 1, None).unwrap();
        assert_eq!(a, 0, "first fit starts at the lowest offset");
        assert_eq!(b, 1 << 20);
        let mid = audit(&op).unwrap();
        assert_eq!(mid.alloc_extents, 2);
        // b was page-rounded up.
        assert_eq!(mid.alloc_bytes, (2 << 20) + PAGE_SIZE);
        assert_eq!(free(&op, a).unwrap(), 1 << 20);
        assert_eq!(free(&op, b).unwrap(), (1 << 20) + PAGE_SIZE);
        let end = audit(&op).unwrap();
        assert_eq!(end.free_extents, 1, "coalesced back to one extent");
        assert_eq!(end.free_bytes, layout.huge_data_size());
    }

    #[test]
    fn first_fit_reuses_the_lowest_hole() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = alloc(&op, 4 << 20, None).unwrap();
        let _b = alloc(&op, 1 << 20, None).unwrap();
        free(&op, a).unwrap();
        // The freed 4 MiB hole at offset 0 is reused before the tail.
        assert_eq!(alloc(&op, 2 << 20, None).unwrap(), 0);
        audit(&op).unwrap();
    }

    #[test]
    fn double_and_invalid_frees_are_rejected() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = alloc(&op, 1 << 20, None).unwrap();
        assert!(matches!(free(&op, a + PAGE_SIZE), Err(PoseidonError::InvalidFree { .. })));
        free(&op, a).unwrap();
        assert!(matches!(free(&op, a), Err(PoseidonError::DoubleFree { .. })));
        audit(&op).unwrap();
    }

    #[test]
    fn exhaustion_reports_the_largest_free_extent() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        let _a = alloc(&op, layout.huge_data_size() / 2, None).unwrap();
        let before = audit(&op).unwrap();
        let err = alloc(&op, layout.huge_data_size(), None).unwrap_err();
        match err {
            PoseidonError::TooLarge { requested, subheap_max, huge_remaining } => {
                assert_eq!(requested, layout.huge_data_size());
                assert_eq!(subheap_max, layout.max_alloc());
                assert_eq!(huge_remaining, before.largest_free);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_size_is_rejected() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        assert!(matches!(alloc(&op, 0, None), Err(PoseidonError::ZeroSize)));
    }

    #[test]
    fn every_crash_point_rolls_back_or_completes() {
        // Adversarial sweep: crash after every persisted store of an
        // alloc and of a free; after replay the table must audit clean
        // and show either the old or the new state — never a torn one.
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let target = 1u64 << 20; // where the swept 2 MiB extent lands
        {
            // A 1 MiB anchor at offset 0 keeps the swept extent interior.
            let op = HugeOp::unguarded(ctx).unwrap();
            assert_eq!(alloc(&op, 1 << 20, None).unwrap(), 0);
        }
        for stage in ["alloc", "free"] {
            // Each stage sweeps one op: reset to its pre-state, arm a
            // crash k events in, replay, audit, tighten k until the op
            // runs to completion uninterrupted.
            let mut k = 1u64;
            loop {
                {
                    // Reset to the stage's pre-image (crash may have left
                    // either the old or the new state behind).
                    let op = HugeOp::unguarded(ctx).unwrap();
                    let live = lookup(&op, target).unwrap().filter(|r| r.state == state::ALLOC);
                    match (stage, live) {
                        ("alloc", Some(_)) => {
                            free(&op, target).unwrap();
                        }
                        ("free", None) => {
                            assert_eq!(alloc(&op, 2 << 20, None).unwrap(), target);
                        }
                        _ => {}
                    }
                }
                dev.arm_crash_after(k);
                let result = {
                    let op = HugeOp::unguarded(ctx).unwrap();
                    if stage == "alloc" {
                        alloc(&op, 2 << 20, None).map(|_| ())
                    } else {
                        free(&op, target).map(|_| ())
                    }
                };
                dev.simulate_crash(CrashMode::Strict, k);
                crate::undo::replay(&dev, ctx.undo_area()).unwrap();
                let op = HugeOp::unguarded(ctx).unwrap();
                let a = audit(&op).unwrap();
                assert_eq!(
                    a.free_bytes + a.alloc_bytes + a.quarantined_bytes,
                    layout.huge_data_size(),
                    "crash point {k} in {stage} left a torn table"
                );
                if result.is_ok() {
                    break;
                }
                k += 1;
                assert!(k < 100, "crash sweep did not converge");
            }
            assert!(k > 3, "sweep must cover interior crash points, swept only {k}");
        }
        // Both stages done (free completed last): only the anchor remains.
        let op = HugeOp::unguarded(ctx).unwrap();
        free(&op, 0).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.free_extents, 1);
        assert_eq!(a.free_bytes, layout.huge_data_size());
    }

    #[test]
    fn table_full_when_no_slot_for_the_split() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        // Fill every slot: the region tiles into HUGE_EXTENT_SLOTS
        // single-page ALLOC extents is too slow; instead, synthesize a
        // full table directly (alternating ALLOC extents with one FREE
        // tail larger than a page, leaving zero vacant slots).
        let pages = layout.huge_data_size() / PAGE_SIZE;
        assert!(pages as usize > HUGE_EXTENT_SLOTS);
        for i in 0..HUGE_EXTENT_SLOTS - 1 {
            dev.write_pod(ctx.slot_off(i), &extent(i as u64 * PAGE_SIZE, PAGE_SIZE, state::ALLOC)).unwrap();
        }
        let used = (HUGE_EXTENT_SLOTS as u64 - 1) * PAGE_SIZE;
        dev.write_pod(
            ctx.slot_off(HUGE_EXTENT_SLOTS - 1),
            &extent(used, layout.huge_data_size() - used, state::FREE),
        )
        .unwrap();
        audit(&op).unwrap();
        // A fitting request that needs a split has no slot for the rest.
        assert!(matches!(alloc(&op, PAGE_SIZE, None), Err(PoseidonError::TableFull)));
        // An exact-fit request for the whole tail still succeeds.
        let off = alloc(&op, layout.huge_data_size() - used, None).unwrap();
        assert_eq!(off, used);
        audit(&op).unwrap();
    }

    #[test]
    fn poisoned_extent_is_quarantined_on_free() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = alloc(&op, 1 << 20, None).unwrap();
        dev.poison(layout.huge_phys_of(a, 1 << 20).unwrap() + 64, 128).unwrap();
        assert_eq!(free(&op, a).unwrap(), 1 << 20);
        let aud = audit(&op).unwrap();
        assert_eq!(aud.quarantined_extents, 1);
        assert_eq!(aud.quarantined_bytes, 1 << 20);
        // The quarantined extent is not re-allocatable and not freeable.
        assert!(matches!(free(&op, a), Err(PoseidonError::InvalidFree { .. })));
        let b = alloc(&op, 1 << 20, None).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn quarantine_poisoned_splits_free_extents_page_granularly() {
        let (dev, layout) = setup();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        let op = HugeOp::unguarded(ctx).unwrap();
        // Poison one line in the middle of the (single, free) region.
        let at = layout.huge_phys_of(8 * PAGE_SIZE, PAGE_SIZE).unwrap() + 256;
        dev.poison(at, 64).unwrap();
        let poison = dev.scrub();
        let (extents, bytes) = quarantine_poisoned(&op, &poison).unwrap();
        assert_eq!(extents, 1);
        assert_eq!(bytes, PAGE_SIZE, "only the poisoned page is withdrawn");
        let aud = audit(&op).unwrap();
        assert_eq!(aud.quarantined_bytes, PAGE_SIZE);
        assert_eq!(aud.free_extents, 2, "front and tail remain free");
        assert_eq!(aud.free_bytes, layout.huge_data_size() - PAGE_SIZE);
        // Idempotent: a second pass finds nothing more to do.
        assert_eq!(quarantine_poisoned(&op, &poison).unwrap(), (0, 0));
        // Allocation steers around the quarantined page.
        let got = alloc(&op, 16 * PAGE_SIZE, None).unwrap();
        assert!(got > 8 * PAGE_SIZE, "hole before the poison is too small");
    }

    #[test]
    fn extend_adds_a_band_and_walls_stop_coalescing() {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20).growable_to(256 << 20));
        format(&dev, &layout).unwrap();
        let old_total = layout.huge_data_size();

        // Grow: commit a second epoch in memory and on the device, then
        // run the idempotent band bookkeeping.
        let epoch = layout.plan_growth(128 << 20).unwrap();
        assert!(epoch.huge_size > 0, "growth of this shape must carry a band");
        dev.grow(128 << 20).unwrap();
        layout.push_epoch(epoch).unwrap();
        let ctx = HugeCtx { dev: &dev, layout: &layout };
        {
            let op = HugeOp::unguarded(ctx).unwrap();
            assert_eq!(extend_to_layout(&op).unwrap(), epoch.huge_size);
            assert_eq!(extend_to_layout(&op).unwrap(), 0, "second run is a no-op");
        }
        validate(&ctx).unwrap();
        let op = HugeOp::unguarded(ctx).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.free_bytes, layout.huge_data_size());
        assert_eq!(a.free_extents, 2, "band-wall neighbours stay uncoalesced");

        // Fill band 0 exactly, then the next allocation must come from
        // the new band (extents never straddle the wall).
        assert_eq!(alloc(&op, old_total, None).unwrap(), 0);
        let big = alloc(&op, epoch.huge_size, None).unwrap();
        assert_eq!(big, old_total, "exact fit at the new band's start");
        assert!(layout.huge_phys_of(big, epoch.huge_size).is_some());
        assert_eq!(free(&op, big).unwrap(), epoch.huge_size);
        assert_eq!(free(&op, 0).unwrap(), old_total);
        let end = audit(&op).unwrap();
        assert_eq!(end.free_extents, 2, "coalescing is confined to the band");
        assert_eq!(end.free_bytes, layout.huge_data_size());
    }
}
