//! Offline repair of media-damaged heaps — the engine behind
//! `pfsck --repair`.
//!
//! Load-time recovery (see `recovery.rs`) degrades gracefully: it
//! quarantines what it cannot trust and keeps the heap running. Repair is
//! the offline counterpart that makes the damage go away: it scrubs
//! poisoned *metadata* lines (clearing poison zero-fills the line, as an
//! address-range-scrub clear does), rebuilds what the zeroed bytes
//! destroyed, and leaves a heap that loads with no sub-heap quarantined
//! wholesale.
//!
//! The pass, in order:
//!
//! 1. **Superblock.** The header lines (identity, geometry, root pointer)
//!    are the only unrepairable state: if they are poisoned the root
//!    object is lost and repair fails with
//!    [`PoseidonError::MediaError`]. Poisoned directory lines are
//!    scrubbed and every entry they held is reconstructed from the
//!    corresponding sub-heap header's magic (a *poisoned* header also
//!    implies "created" — poison only lands on written lines, and a
//!    never-created sub-heap's metadata is never written). The
//!    superblock undo log is scrubbed — zeroed lines fail entry
//!    validation, truncating the log — and replayed.
//! 2. **Each created sub-heap.**
//!    * The header page is scrubbed; a destroyed header is rebuilt from
//!      the directory, and its undo log is then discarded wholesale —
//!      the log generation was lost with the header, and replaying
//!      entries of an unknown generation could roll back long-committed
//!      operations.
//!    * The micro-log area is scrubbed; any slot that lost a line has
//!      its count reset (a zeroed entry would otherwise "free" pointer
//!      zero on the next load, hitting whatever block lives at offset 0).
//!    * The hash-table area is scrubbed; destroyed entries in active
//!      levels are rewritten as tombstones — never left `EMPTY`, which
//!      would truncate probe chains and lose every record behind them.
//!    * The undo log (when its generation survived) is scrubbed and
//!      replayed, rolling back the operation the media error
//!      interrupted.
//!    * Level live counts and every buddy free list are rebuilt
//!      wholesale from the surviving records: FREE blocks overlapping
//!      user-region poison become QUARANTINED, QUARANTINED blocks whose
//!      poison has been cleared return to FREE, and the rest are
//!      relinked in table order (tombstoning tears lists apart, so a
//!      full rebuild is the only safe reconstruction).
//!
//! User-region poison is deliberately **not** scrubbed: allocated blocks
//! may hold the application's only copy of that data, and zero-filling
//! it would turn a detectable error into silent corruption. The poison
//! stays, the overlapping free blocks stay quarantined, and reads of the
//! bad lines keep failing with the typed error until the operator clears
//! them.
//!
//! Repair runs no undo sessions of its own — every write is direct — so
//! it is idempotent by re-execution: a crash mid-repair is handled by
//! simply running repair again. It must run *offline* (no heap open on
//! the device; an open heap's MPK tags would fault the writes). Records
//! destroyed by poison leak the bytes they covered — with no record
//! there is no merge partner — which the audit tolerates as a coverage
//! hole.

use pmem::{PmemDevice, CACHE_LINE_SIZE};

use crate::error::{PoseidonError, Result};
use crate::layout::{
    class_for_size, HeapLayout, ENTRY_SIZE, MAX_LEVELS, MICRO_SLOT_BYTES, NUM_CLASSES, SB_DIR_OFF,
    SB_REGION_SIZE, SB_UNDO_SIZE, SH_MICRO_OFF, SH_MICRO_SIZE, SH_TABLE_OFF, SH_UNDO_OFF, SH_UNDO_SIZE,
};
use crate::microlog;
use crate::persist::{state, HashEntry, SubCtx, SubheapHeader, SUBHEAP_MAGIC};
use crate::quarantine;
use crate::superblock;
use crate::undo;

/// What an offline [`repair`] pass found and fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Poisoned metadata cache lines scrubbed (cleared and zero-filled).
    pub lines_scrubbed: u64,
    /// Sub-heap directory entries reconstructed from header magic.
    pub directory_entries_rebuilt: u32,
    /// Sub-heap headers rebuilt from scratch.
    pub headers_rebuilt: u32,
    /// Undo logs that lost entries to scrubbing (truncated at the first
    /// zeroed line) or were discarded with a rebuilt header.
    pub undo_logs_truncated: u32,
    /// Undo logs replayed (superblock and sub-heap).
    pub undo_logs_replayed: u32,
    /// Micro-log slots whose pending transaction was discarded because a
    /// poisoned line destroyed part of it.
    pub micro_slots_reset: u32,
    /// Hash-table entries destroyed by poison and rewritten as
    /// tombstones (their blocks' bytes are leaked).
    pub entries_tombstoned: u64,
    /// Free blocks newly quarantined because they overlap user-region
    /// poison.
    pub blocks_quarantined: u64,
    /// Bytes covered by the newly quarantined blocks.
    pub bytes_quarantined: u64,
    /// Quarantined blocks returned to their free lists because their
    /// poison is gone.
    pub blocks_released: u64,
    /// Created sub-heaps processed (free lists and counts rebuilt).
    pub subheaps_repaired: u32,
}

impl RepairReport {
    /// Whether the pass found any media damage to fix.
    pub fn damage_found(&self) -> bool {
        self.lines_scrubbed > 0
            || self.blocks_quarantined > 0
            || self.blocks_released > 0
            || self.micro_slots_reset > 0
    }
}

/// Repairs the heap on `dev` in place. See the module docs for the exact
/// pass; the caller persists the result (the pass itself persists every
/// region it touches, so a subsequent snapshot save succeeds).
///
/// # Errors
///
/// [`PoseidonError::MediaError`] if the superblock header itself is
/// poisoned (the root object is lost — nothing to repair towards);
/// [`PoseidonError::Corrupted`] if no valid heap is present; or device
/// errors.
pub fn repair(dev: &PmemDevice) -> Result<RepairReport> {
    // A poisoned header line fails this read with the typed media error:
    // identity, geometry and the root pointer are gone, and so is the heap.
    let (_, layout) = superblock::load(dev)?;
    let mut report = RepairReport::default();

    repair_directory(dev, &layout, &mut report)?;

    // Scrub the rest of the superblock region (the header lines are known
    // clean — the load above read them). Zeroed lines inside the undo
    // area truncate the log at the first invalid entry; the replay then
    // rolls back whatever prefix survived.
    let scrubbed = scrub_range(dev, 0, SB_REGION_SIZE)?;
    if overlaps_lines(&scrubbed, superblock::undo_area().base, SB_UNDO_SIZE) {
        report.undo_logs_truncated += 1;
    }
    report.lines_scrubbed += scrubbed.len() as u64;
    if undo::replay(dev, superblock::undo_area())? {
        report.undo_logs_replayed += 1;
    }
    dev.persist(0, SB_REGION_SIZE)?;

    for sub in 0..layout.num_subheaps {
        if superblock::dir_entry(dev, sub)?.state != 1 {
            continue;
        }
        repair_sub(dev, &layout, sub, &mut report)?;
        report.subheaps_repaired += 1;
    }
    Ok(report)
}

/// Scrubs poisoned directory lines and reconstructs the entries they
/// held from the sub-heap headers.
fn repair_directory(dev: &PmemDevice, layout: &HeapLayout, report: &mut RepairReport) -> Result<()> {
    let dir_len = layout.num_subheaps as u64 * 8;
    let cleared = scrub_range(dev, SB_DIR_OFF, dir_len)?;
    report.lines_scrubbed += cleared.len() as u64;
    for line in cleared {
        let first = (line - SB_DIR_OFF) / 8;
        let last = (first + CACHE_LINE_SIZE / 8).min(layout.num_subheaps as u64);
        for sub in first..last {
            let sub = sub as u16;
            let meta = layout.meta_base(sub);
            let entry = if dev.is_poisoned(meta, CACHE_LINE_SIZE) {
                // The header was written (poison lands only on written
                // lines), so the sub-heap existed. Its node is gone with
                // the header; 0 is as good a home as any.
                crate::persist::DirEntry { state: 1, node: 0 }
            } else {
                let header: SubheapHeader = dev.read_pod(meta)?;
                if header.magic == SUBHEAP_MAGIC {
                    crate::persist::DirEntry { state: 1, node: header.node }
                } else {
                    crate::persist::DirEntry::default()
                }
            };
            if entry.state == 1 {
                report.directory_entries_rebuilt += 1;
            }
            dev.write_pod(superblock::dir_entry_off(sub), &entry)?;
        }
    }
    Ok(())
}

fn repair_sub(dev: &PmemDevice, layout: &HeapLayout, sub: u16, report: &mut RepairReport) -> Result<()> {
    let ctx = SubCtx { dev, layout, sub };
    let meta = ctx.meta_base();

    // Header page (header + buddy arrays + level counts). The arrays are
    // rebuilt wholesale below, so zero-filled lines there cost nothing.
    let header_destroyed = dev.is_poisoned(meta, CACHE_LINE_SIZE);
    report.lines_scrubbed += scrub_range(dev, meta, SH_UNDO_OFF)?.len() as u64;
    if header_destroyed {
        let node = superblock::dir_entry(dev, sub)?.node;
        let header = SubheapHeader {
            magic: SUBHEAP_MAGIC,
            subheap_id: sub as u32,
            node,
            undo_gen: 0,
            micro_count: 0,
            active_levels: 1, // fixed up after the table is scrubbed
        };
        dev.write_pod(meta, &header)?;
        report.headers_rebuilt += 1;
    }

    // Micro-log area: a slot that lost any line cannot be trusted — reset
    // its count so the pending transaction is discarded rather than
    // replayed from zero-filled pointers.
    let micro_cleared = scrub_range(dev, meta + SH_MICRO_OFF, SH_MICRO_SIZE)?;
    report.lines_scrubbed += micro_cleared.len() as u64;
    let mut reset_slots = std::collections::BTreeSet::new();
    for line in &micro_cleared {
        reset_slots.insert(((line - (meta + SH_MICRO_OFF)) / MICRO_SLOT_BYTES) as usize);
    }
    for &slot in &reset_slots {
        dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
    }
    report.micro_slots_reset += reset_slots.len() as u32;

    // Hash-table area: scrub first (so the replay below can flush these
    // lines), remember which entries were destroyed.
    let table_cleared = scrub_range(dev, meta + SH_TABLE_OFF, layout.meta_size - SH_TABLE_OFF)?;
    report.lines_scrubbed += table_cleared.len() as u64;

    // Undo log: with the header's generation intact, scrub (truncating at
    // the first zeroed line) and replay the surviving prefix. With a
    // rebuilt header the generation is unknown — discard the log
    // entirely; replaying stale-generation entries could roll back
    // long-committed operations.
    if header_destroyed {
        dev.punch_hole(meta + SH_UNDO_OFF, SH_UNDO_SIZE)?;
        report.undo_logs_truncated += 1;
    } else {
        let undo_cleared = scrub_range(dev, meta + SH_UNDO_OFF, SH_UNDO_SIZE)?;
        if !undo_cleared.is_empty() {
            report.undo_logs_truncated += 1;
        }
        report.lines_scrubbed += undo_cleared.len() as u64;
        if undo::replay(dev, ctx.undo_area())? {
            report.undo_logs_replayed += 1;
        }
    }

    // The replay may have restored a micro-log count we just reset (the
    // interrupted operation logged it); reset again, and discard any slot
    // whose surviving entries contain a null pointer — freeing "pointer
    // zero" on load would hit whatever block lives at offset 0.
    for &slot in &reset_slots {
        dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
    }
    for slot in microlog::all_slots() {
        let pending = match microlog::entries_direct(&ctx, slot) {
            Ok(p) => p,
            Err(PoseidonError::Corrupted(_)) => {
                dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
                report.micro_slots_reset += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        if pending.iter().any(|p| p.is_null() || p.subheap() != sub) {
            dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
            report.micro_slots_reset += 1;
        }
    }

    // Active level count: trust the stored value unless the header was
    // rebuilt, in which case recount from the table (only *live* records
    // mark a level active — leftover tombstones in a deactivated level
    // must not resurrect it).
    let active = if header_destroyed {
        recount_active_levels(&ctx)?
    } else {
        (ctx.active_levels()?).clamp(1, MAX_LEVELS as u64) as usize
    };
    dev.write_pod(ctx.active_levels_off(), &(active as u64))?;

    // Destroyed table entries in active levels become tombstones: a
    // zero-filled (EMPTY) slot would terminate probe scans early and
    // lose every record probing past it.
    let table_end = layout.level_base(sub, active - 1) + layout.level_capacity(active - 1) * ENTRY_SIZE;
    let tombstone = HashEntry { state: state::TOMBSTONE, ..Default::default() };
    for line in &table_cleared {
        if *line < table_end {
            dev.write_pod(*line, &tombstone)?;
            report.entries_tombstoned += 1;
        }
    }

    rebuild_lists(&ctx, active, report)?;
    dev.persist(meta, layout.meta_size)?;
    Ok(())
}

/// Highest level holding a live record, plus one (minimum 1).
fn recount_active_levels(ctx: &SubCtx<'_>) -> Result<usize> {
    for level in (0..MAX_LEVELS).rev() {
        let base = ctx.layout.level_base(ctx.sub, level);
        for i in 0..ctx.layout.level_capacity(level) {
            let rec = ctx.entry(base + i * ENTRY_SIZE)?;
            if matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED) {
                return Ok(level + 1);
            }
        }
    }
    Ok(1)
}

/// Rebuilds the level live counts and every buddy free list from the
/// surviving records, applying the quarantine transitions against the
/// device's current poison list.
fn rebuild_lists(ctx: &SubCtx<'_>, active: usize, report: &mut RepairReport) -> Result<()> {
    let dev = ctx.dev;
    let poison = dev.scrub();
    let user_base = ctx.user_base();
    for class in 0..NUM_CLASSES {
        dev.write_pod(ctx.buddy_head_off(class), &0u64)?;
        dev.write_pod(ctx.buddy_tail_off(class), &0u64)?;
    }
    let mut last: Vec<Option<(u64, HashEntry)>> = vec![None; NUM_CLASSES];
    for level in 0..active {
        let base = ctx.layout.level_base(ctx.sub, level);
        let mut live = 0u64;
        for i in 0..ctx.layout.level_capacity(level) {
            let rec_off = base + i * ENTRY_SIZE;
            let mut rec = ctx.entry(rec_off)?;
            if !matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED) {
                continue;
            }
            live += 1;
            if rec.state == state::ALLOC {
                // Allocated blocks keep their (possibly poisoned) data;
                // the typed error surfaces on read, never silently.
                continue;
            }
            let poisoned = quarantine::overlaps_any(&poison, user_base + rec.offset, rec.size);
            if poisoned {
                if rec.state == state::FREE {
                    report.blocks_quarantined += 1;
                    report.bytes_quarantined += rec.size;
                }
                rec.state = state::QUARANTINED;
                rec.next_free = 0;
                rec.prev_free = 0;
                dev.write_pod(rec_off, &rec)?;
                continue;
            }
            if rec.state == state::QUARANTINED {
                report.blocks_released += 1;
            }
            let (class, _) = class_for_size(rec.size)?;
            rec.state = state::FREE;
            rec.prev_free = last[class].map_or(0, |(off, _)| off);
            rec.next_free = 0;
            dev.write_pod(rec_off, &rec)?;
            match last[class] {
                Some((prev_off, mut prev)) => {
                    prev.next_free = rec_off;
                    dev.write_pod(prev_off, &prev)?;
                }
                None => dev.write_pod(ctx.buddy_head_off(class), &rec_off)?,
            }
            last[class] = Some((rec_off, rec));
        }
        dev.write_pod(ctx.level_count_off(level), &live)?;
    }
    for (class, tail) in last.iter().enumerate() {
        if let Some((off, _)) = tail {
            dev.write_pod(ctx.buddy_tail_off(class), off)?;
        }
    }
    Ok(())
}

/// Clears every poisoned line inside `[offset, offset + len)` (the device
/// zero-fills them) and returns their line-aligned offsets.
fn scrub_range(dev: &PmemDevice, offset: u64, len: u64) -> Result<Vec<u64>> {
    debug_assert_eq!(offset % CACHE_LINE_SIZE, 0);
    let mut cleared = Vec::new();
    for range in dev.scrub() {
        if !range.overlaps(offset, len) {
            continue;
        }
        let start = range.offset.max(offset);
        let end = (range.offset + range.len).min(offset + len);
        let mut line = start;
        while line < end {
            cleared.push(line);
            line += CACHE_LINE_SIZE;
        }
    }
    if !cleared.is_empty() {
        dev.clear_poison(offset, len)?;
    }
    Ok(cleared)
}

/// Whether any of `lines` falls inside `[offset, offset + len)`.
fn overlaps_lines(lines: &[u64], offset: u64, len: u64) -> bool {
    lines.iter().any(|&line| line >= offset && line < offset + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{HeapConfig, PoseidonHeap};
    use crate::subheap;
    use pmem::DeviceConfig;
    use std::sync::Arc;

    fn build_heap() -> (Arc<PmemDevice>, Vec<crate::NvmPtr>) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let mut live = Vec::new();
        for cpu in 0..2usize {
            let _pin = pmem::numa::CpuPinGuard::pin(cpu);
            for i in 0..32u64 {
                let p = heap.alloc(64 + i % 200).unwrap();
                if i % 2 == 0 {
                    heap.free(p).unwrap();
                } else {
                    live.push(p);
                }
            }
        }
        heap.set_root(live[0]).unwrap();
        heap.close().unwrap();
        (dev, live)
    }

    /// Audits one sub-heap through a throwaway session (the heap is
    /// closed, so its pages carry no protection key).
    fn audit_sub(dev: &Arc<PmemDevice>, layout: &HeapLayout, sub: u16) -> subheap::SubheapAudit {
        let op = crate::session::OpSession::unguarded(SubCtx { dev, layout, sub }).unwrap();
        subheap::audit(&op).unwrap()
    }

    fn reload_and_audit(dev: &Arc<PmemDevice>) -> PoseidonHeap {
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert!(heap.quarantined_subheaps().is_empty(), "repair must leave no wholesale quarantine");
        heap.audit().unwrap();
        heap
    }

    #[test]
    fn clean_heap_repair_is_a_no_op() {
        let (dev, live) = build_heap();
        let report = repair(&dev).unwrap();
        assert!(!report.damage_found());
        assert_eq!(report.subheaps_repaired, 2);
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    }

    #[test]
    fn poisoned_table_entry_is_tombstoned_without_losing_neighbours() {
        let (dev, live) = build_heap();
        // Poison one hash-table line of sub-heap 0.
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        // Find a FREE record and poison its table line.
        let victim = (0..layout.level_capacity(0))
            .map(|i| layout.level_base(0, 0) + i * ENTRY_SIZE)
            .find(|&off| ctx.entry(off).unwrap().state == state::FREE)
            .expect("a free record exists");
        dev.poison(victim, 1).unwrap();

        let report = repair(&dev).unwrap();
        assert!(report.damage_found());
        assert_eq!(report.entries_tombstoned, 1);
        assert_eq!(ctx.entry(victim).unwrap().state, state::TOMBSTONE);

        // The heap loads clean and every surviving allocation is intact.
        let heap = reload_and_audit(&dev);
        assert!(!heap.root().unwrap().is_null());
        for p in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    }

    #[test]
    fn poisoned_free_block_stays_quarantined_and_returns_after_clear() {
        let (dev, _) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let (_, rec) = (0..layout.level_capacity(0))
            .map(|i| layout.level_base(0, 0) + i * ENTRY_SIZE)
            .map(|off| (off, ctx.entry(off).unwrap()))
            .find(|(_, e)| e.state == state::FREE)
            .unwrap();
        let user_off = ctx.user_base() + rec.offset;
        dev.poison(user_off, 1).unwrap();

        let report = repair(&dev).unwrap();
        assert_eq!(report.blocks_quarantined, 1);
        assert_eq!(report.bytes_quarantined, rec.size);
        let audit = audit_sub(&dev, &layout, 0);
        assert_eq!(audit.quarantined_blocks, 1);

        // Operator clears the poison; the next repair releases the block.
        dev.clear_poison(user_off, rec.size).unwrap();
        let report = repair(&dev).unwrap();
        assert_eq!(report.blocks_released, 1);
        let audit = audit_sub(&dev, &layout, 0);
        assert_eq!(audit.quarantined_blocks, 0);
        reload_and_audit(&dev);
    }

    #[test]
    fn destroyed_subheap_header_is_rebuilt() {
        let (dev, live) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        dev.poison(layout.meta_base(1), 1).unwrap();

        let report = repair(&dev).unwrap();
        assert_eq!(report.headers_rebuilt, 1);
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 1 };
        assert_eq!(ctx.header().unwrap().magic, SUBHEAP_MAGIC);
        audit_sub(&dev, &layout, 1);

        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }

    #[test]
    fn poisoned_directory_line_is_reconstructed() {
        let (dev, live) = build_heap();
        dev.poison(SB_DIR_OFF, 1).unwrap();
        let report = repair(&dev).unwrap();
        // Both sub-heaps were created; both entries come back.
        assert_eq!(report.directory_entries_rebuilt, 2);
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }

    #[test]
    fn poisoned_superblock_header_is_fatal() {
        let (dev, _) = build_heap();
        dev.poison(0, 1).unwrap();
        assert!(matches!(repair(&dev), Err(PoseidonError::MediaError { .. })));
    }

    #[test]
    fn repair_is_idempotent() {
        let (dev, live) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        dev.poison(layout.meta_base(0) + SH_TABLE_OFF, 1).unwrap();
        dev.poison(layout.meta_base(0) + SH_UNDO_OFF, 1).unwrap();
        repair(&dev).unwrap();
        let second = repair(&dev).unwrap();
        assert!(!second.damage_found());
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }
}
