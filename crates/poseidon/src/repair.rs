//! Offline repair of media-damaged heaps — the engine behind
//! `pfsck --repair`.
//!
//! Load-time recovery (see `recovery.rs`) degrades gracefully: it
//! quarantines what it cannot trust and keeps the heap running. Repair is
//! the offline counterpart that makes the damage go away: it scrubs
//! poisoned *metadata* lines (clearing poison zero-fills the line, as an
//! address-range-scrub clear does), rebuilds what the zeroed bytes
//! destroyed, and leaves a heap that loads with no sub-heap quarantined
//! wholesale.
//!
//! The pass, in order:
//!
//! 1. **Superblock.** The header lines (identity, geometry, root pointer)
//!    are the only unrepairable state: if they are poisoned the root
//!    object is lost and repair fails with
//!    [`PoseidonError::MediaError`]. Poisoned directory lines are
//!    scrubbed and every entry they held is reconstructed from the
//!    corresponding sub-heap header's magic (a *poisoned* header also
//!    implies "created" — poison only lands on written lines, and a
//!    never-created sub-heap's metadata is never written). The
//!    superblock undo log is scrubbed — zeroed lines fail entry
//!    validation, truncating the log — and replayed.
//! 2. **Each created sub-heap** — including those the online
//!    self-healing path condemned wholesale (directory state
//!    `DIR_QUARANTINED`): they are rebuilt like any other and their
//!    directory verdict is reset, lifting the quarantine on next load.
//!    * The header page is scrubbed; a destroyed header is rebuilt from
//!      the directory, and its undo log is then discarded wholesale —
//!      the log generation was lost with the header, and replaying
//!      entries of an unknown generation could roll back long-committed
//!      operations.
//!    * The micro-log area is scrubbed; any slot that lost a line has
//!      its count reset (a zeroed entry would otherwise "free" pointer
//!      zero on the next load, hitting whatever block lives at offset 0).
//!    * The hash-table area is scrubbed; destroyed entries in active
//!      levels are rewritten as tombstones — never left `EMPTY`, which
//!      would truncate probe chains and lose every record behind them.
//!    * The undo log (when its generation survived) is scrubbed and
//!      replayed, rolling back the operation the media error
//!      interrupted.
//!    * Level live counts and every buddy free list are rebuilt
//!      wholesale from the surviving records: FREE blocks overlapping
//!      user-region poison become QUARANTINED, QUARANTINED blocks whose
//!      poison has been cleared return to FREE, and the rest are
//!      relinked in table order (tombstoning tears lists apart, so a
//!      full rebuild is the only safe reconstruction).
//!
//! User-region poison is deliberately **not** scrubbed: allocated blocks
//! may hold the application's only copy of that data, and zero-filling
//! it would turn a detectable error into silent corruption. The poison
//! stays, the overlapping free blocks stay quarantined, and reads of the
//! bad lines keep failing with the typed error until the operator clears
//! them.
//!
//! Repair runs no undo sessions of its own — every write is direct — so
//! it is idempotent by re-execution: a crash mid-repair is handled by
//! simply running repair again. It must run *offline* (no heap open on
//! the device; an open heap's MPK tags would fault the writes). Records
//! destroyed by poison leak the bytes they covered — with no record
//! there is no merge partner — which the audit tolerates as a coverage
//! hole.

use pmem::{PmemDevice, CACHE_LINE_SIZE, PAGE_SIZE};

use crate::error::{PoseidonError, Result};
use crate::layout::{
    class_for_size, HeapLayout, ENTRY_SIZE, HUGE_EXTENT_SLOTS, HUGE_UNDO_OFF, HUGE_UNDO_SIZE, MAX_LEVELS,
    MICRO_SLOT_BYTES, NUM_CLASSES, SB_DIR_OFF, SB_EPOCHS_OFF, SB_REGION_SIZE, SB_UNDO_SIZE, SH_MICRO_OFF,
    SH_MICRO_SIZE, SH_TABLE_OFF, SH_UNDO_OFF, SH_UNDO_SIZE,
};
use crate::microlog;
use crate::persist::{
    state, ExtentRecord, HashEntry, HugeCtx, HugeHeader, SubCtx, SubheapHeader, FORMAT_VERSION, HUGE_MAGIC,
    SUBHEAP_MAGIC,
};
use crate::quarantine;
use crate::superblock;
use crate::undo;

/// What an offline [`repair`] pass found and fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Poisoned metadata cache lines scrubbed (cleared and zero-filled).
    pub lines_scrubbed: u64,
    /// Sub-heap directory entries reconstructed from header magic.
    pub directory_entries_rebuilt: u32,
    /// Sub-heap headers rebuilt from scratch.
    pub headers_rebuilt: u32,
    /// Undo logs that lost entries to scrubbing (truncated at the first
    /// zeroed line) or were discarded with a rebuilt header.
    pub undo_logs_truncated: u32,
    /// Undo logs replayed (superblock and sub-heap).
    pub undo_logs_replayed: u32,
    /// Micro-log slots whose pending transaction was discarded because a
    /// poisoned line destroyed part of it.
    pub micro_slots_reset: u32,
    /// Hash-table entries destroyed by poison and rewritten as
    /// tombstones (their blocks' bytes are leaked).
    pub entries_tombstoned: u64,
    /// Free blocks newly quarantined because they overlap user-region
    /// poison.
    pub blocks_quarantined: u64,
    /// Bytes covered by the newly quarantined blocks.
    pub bytes_quarantined: u64,
    /// Quarantined blocks returned to their free lists because their
    /// poison is gone.
    pub blocks_released: u64,
    /// Created sub-heaps processed (free lists and counts rebuilt).
    pub subheaps_repaired: u32,
    /// Hash-table levels whose stored checksum disagreed with the
    /// surviving records (records were lost, not merely absent); the
    /// recomputed checksum is written back.
    pub level_sums_mismatched: u32,
    /// Online-condemned sub-heaps (directory state `DIR_QUARANTINED`,
    /// set by live self-healing) repaired and returned to service.
    pub quarantines_lifted: u32,
    /// Whether the huge-region header was rebuilt from scratch (its undo
    /// log is discarded with it).
    pub huge_header_rebuilt: bool,
    /// Extent-table slots dropped because their record was implausible
    /// (bad state, misaligned or out-of-bounds geometry, overlap with an
    /// earlier extent).
    pub huge_slots_dropped: u32,
    /// Huge-region bytes newly quarantined: coverage holes left by
    /// dropped slots, plus free extents overlapping data poison.
    pub huge_bytes_quarantined: u64,
    /// Trailing layout epochs dropped because their records were torn or
    /// destroyed (a grow interrupted after its undo log was also lost);
    /// the pool conservatively returns to the last committed geometry.
    pub epochs_truncated: u32,
}

impl RepairReport {
    /// Whether the pass found any media damage to fix.
    pub fn damage_found(&self) -> bool {
        self.lines_scrubbed > 0
            || self.blocks_quarantined > 0
            || self.blocks_released > 0
            || self.micro_slots_reset > 0
            || self.level_sums_mismatched > 0
            || self.quarantines_lifted > 0
            || self.huge_header_rebuilt
            || self.huge_slots_dropped > 0
            || self.huge_bytes_quarantined > 0
            || self.epochs_truncated > 0
    }
}

/// Repairs the heap on `dev` in place. See the module docs for the exact
/// pass; the caller persists the result (the pass itself persists every
/// region it touches, so a subsequent snapshot save succeeds).
///
/// # Errors
///
/// [`PoseidonError::MediaError`] if the superblock header itself is
/// poisoned (the root object is lost — nothing to repair towards);
/// [`PoseidonError::Corrupted`] if no valid heap is present; or device
/// errors.
pub fn repair(dev: &PmemDevice) -> Result<RepairReport> {
    let mut report = RepairReport::default();
    // The layout-epoch chain is parsed by `superblock::load` below, and a
    // grow commits across it under the superblock undo log: scrub and
    // replay that log *first* so a torn epoch commit rolls back cleanly,
    // then conservatively truncate whatever tail a lost log left
    // half-written (each dropped epoch's space simply leaves the pool).
    let undo_scrubbed = scrub_range(dev, superblock::undo_area().base, SB_UNDO_SIZE)?;
    if !undo_scrubbed.is_empty() {
        report.undo_logs_truncated += 1;
    }
    report.lines_scrubbed += undo_scrubbed.len() as u64;
    if undo::replay(dev, superblock::undo_area())? {
        report.undo_logs_replayed += 1;
    }
    report.lines_scrubbed += scrub_range(dev, SB_EPOCHS_OFF, superblock::EPOCH_AREA_SIZE)?.len() as u64;
    report.epochs_truncated = superblock::truncate_torn_epochs(dev)?;
    // A poisoned header line fails this read with the typed media error:
    // identity, geometry and the root pointer are gone, and so is the heap.
    let (_, layout) = superblock::load(dev)?;

    repair_directory(dev, &layout, &mut report)?;

    // Scrub the rest of the superblock region (the header lines are known
    // clean — the load above read them). Zeroed lines inside the undo
    // area truncate the log at the first invalid entry; the replay then
    // rolls back whatever prefix survived.
    let scrubbed = scrub_range(dev, 0, SB_REGION_SIZE)?;
    if overlaps_lines(&scrubbed, superblock::undo_area().base, SB_UNDO_SIZE) {
        report.undo_logs_truncated += 1;
    }
    report.lines_scrubbed += scrubbed.len() as u64;
    if undo::replay(dev, superblock::undo_area())? {
        report.undo_logs_replayed += 1;
    }
    dev.persist(0, SB_REGION_SIZE)?;

    for sub in 0..layout.num_subheaps() {
        let entry = superblock::dir_entry(dev, sub)?;
        if entry.state != 1 && entry.state != superblock::DIR_QUARANTINED {
            continue;
        }
        repair_sub(dev, &layout, sub, &mut report)?;
        if entry.state == superblock::DIR_QUARANTINED {
            // Live self-healing condemned this sub-heap wholesale; the
            // rebuild above re-established its metadata (poisoned free
            // blocks stay block-quarantined), so the directory verdict
            // is lifted and the sub-heap returns to service on load.
            let lifted = crate::persist::DirEntry { state: 1, node: entry.node };
            dev.write_pod(superblock::dir_entry_off(sub), &lifted)?;
            dev.persist(superblock::dir_entry_off(sub), 8)?;
            report.quarantines_lifted += 1;
        }
        report.subheaps_repaired += 1;
    }
    repair_huge(dev, &layout, &mut report)?;
    Ok(report)
}

/// Scrubs poisoned directory lines and reconstructs the entries they
/// held from the sub-heap headers.
fn repair_directory(dev: &PmemDevice, layout: &HeapLayout, report: &mut RepairReport) -> Result<()> {
    let dir_len = layout.num_subheaps() as u64 * 8;
    let cleared = scrub_range(dev, SB_DIR_OFF, dir_len)?;
    report.lines_scrubbed += cleared.len() as u64;
    for line in cleared {
        let first = (line - SB_DIR_OFF) / 8;
        let last = (first + CACHE_LINE_SIZE / 8).min(layout.num_subheaps() as u64);
        for sub in first..last {
            let sub = sub as u16;
            let meta = layout.meta_base(sub);
            let entry = if dev.is_poisoned(meta, CACHE_LINE_SIZE) {
                // The header was written (poison lands only on written
                // lines), so the sub-heap existed. Its node is gone with
                // the header; 0 is as good a home as any.
                crate::persist::DirEntry { state: 1, node: 0 }
            } else {
                let header: SubheapHeader = dev.read_pod(meta)?;
                if header.magic == SUBHEAP_MAGIC {
                    crate::persist::DirEntry { state: 1, node: header.node }
                } else {
                    crate::persist::DirEntry::default()
                }
            };
            if entry.state == 1 {
                report.directory_entries_rebuilt += 1;
            }
            dev.write_pod(superblock::dir_entry_off(sub), &entry)?;
        }
    }
    Ok(())
}

fn repair_sub(dev: &PmemDevice, layout: &HeapLayout, sub: u16, report: &mut RepairReport) -> Result<()> {
    let ctx = SubCtx { dev, layout, sub };
    let meta = ctx.meta_base();

    // Header page (header + buddy arrays + level counts). The arrays are
    // rebuilt wholesale below, so zero-filled lines there cost nothing.
    let header_destroyed = dev.is_poisoned(meta, CACHE_LINE_SIZE);
    report.lines_scrubbed += scrub_range(dev, meta, SH_UNDO_OFF)?.len() as u64;
    if header_destroyed {
        let node = superblock::dir_entry(dev, sub)?.node;
        let header = SubheapHeader {
            magic: SUBHEAP_MAGIC,
            subheap_id: sub as u32,
            node,
            undo_gen: 0,
            micro_count: 0,
            active_levels: 1, // fixed up after the table is scrubbed
        };
        dev.write_pod(meta, &header)?;
        report.headers_rebuilt += 1;
    }

    // Micro-log area: a slot that lost any line cannot be trusted — reset
    // its count so the pending transaction is discarded rather than
    // replayed from zero-filled pointers.
    let micro_cleared = scrub_range(dev, meta + SH_MICRO_OFF, SH_MICRO_SIZE)?;
    report.lines_scrubbed += micro_cleared.len() as u64;
    let mut reset_slots = std::collections::BTreeSet::new();
    for line in &micro_cleared {
        reset_slots.insert(((line - (meta + SH_MICRO_OFF)) / MICRO_SLOT_BYTES) as usize);
    }
    for &slot in &reset_slots {
        dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
    }
    report.micro_slots_reset += reset_slots.len() as u32;

    // Hash-table area: scrub first (so the replay below can flush these
    // lines), remember which entries were destroyed.
    let table_cleared = scrub_range(dev, meta + SH_TABLE_OFF, layout.meta_size - SH_TABLE_OFF)?;
    report.lines_scrubbed += table_cleared.len() as u64;

    // Undo log: with the header's generation intact, scrub (truncating at
    // the first zeroed line) and replay the surviving prefix. With a
    // rebuilt header the generation is unknown — discard the log
    // entirely; replaying stale-generation entries could roll back
    // long-committed operations.
    if header_destroyed {
        dev.punch_hole(meta + SH_UNDO_OFF, SH_UNDO_SIZE)?;
        report.undo_logs_truncated += 1;
    } else {
        let undo_cleared = scrub_range(dev, meta + SH_UNDO_OFF, SH_UNDO_SIZE)?;
        if !undo_cleared.is_empty() {
            report.undo_logs_truncated += 1;
        }
        report.lines_scrubbed += undo_cleared.len() as u64;
        if undo::replay(dev, ctx.undo_area())? {
            report.undo_logs_replayed += 1;
        }
    }

    // The replay may have restored a micro-log count we just reset (the
    // interrupted operation logged it); reset again, and discard any slot
    // whose surviving entries contain a null pointer — freeing "pointer
    // zero" on load would hit whatever block lives at offset 0.
    for &slot in &reset_slots {
        dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
    }
    for slot in microlog::all_slots() {
        let pending = match microlog::entries_direct(&ctx, slot) {
            Ok(p) => p,
            Err(PoseidonError::Corrupted(_)) => {
                dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
                report.micro_slots_reset += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        if pending.iter().any(|p| p.is_null() || p.subheap() != sub) {
            dev.write_pod(ctx.micro_count_off(slot), &0u64)?;
            report.micro_slots_reset += 1;
        }
    }

    // Active level count: trust the stored value unless the header was
    // rebuilt, in which case recount from the table (only *live* records
    // mark a level active — leftover tombstones in a deactivated level
    // must not resurrect it).
    let active = if header_destroyed {
        recount_active_levels(&ctx)?
    } else {
        (ctx.active_levels()?).clamp(1, MAX_LEVELS as u64) as usize
    };
    dev.write_pod(ctx.active_levels_off(), &(active as u64))?;

    // Destroyed table entries in active levels become tombstones: a
    // zero-filled (EMPTY) slot would terminate probe scans early and
    // lose every record probing past it.
    let table_end = layout.level_base(sub, active - 1) + layout.level_capacity(active - 1) * ENTRY_SIZE;
    let tombstone = HashEntry { state: state::TOMBSTONE, ..Default::default() };
    for line in &table_cleared {
        if *line < table_end {
            dev.write_pod(*line, &tombstone)?;
            report.entries_tombstoned += 1;
        }
    }

    rebuild_lists(&ctx, active, report)?;
    dev.persist(meta, layout.meta_size)?;
    Ok(())
}

/// Highest level holding a live record, plus one (minimum 1).
fn recount_active_levels(ctx: &SubCtx<'_>) -> Result<usize> {
    for level in (0..MAX_LEVELS).rev() {
        let base = ctx.layout.level_base(ctx.sub, level);
        for i in 0..ctx.layout.level_capacity(level) {
            let rec = ctx.entry(base + i * ENTRY_SIZE)?;
            if matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED) {
                return Ok(level + 1);
            }
        }
    }
    Ok(1)
}

/// Rebuilds the level live counts and every buddy free list from the
/// surviving records, applying the quarantine transitions against the
/// device's current poison list.
fn rebuild_lists(ctx: &SubCtx<'_>, active: usize, report: &mut RepairReport) -> Result<()> {
    let dev = ctx.dev;
    let poison = dev.scrub();
    let user_base = ctx.user_base();
    for class in 0..NUM_CLASSES {
        dev.write_pod(ctx.buddy_head_off(class), &0u64)?;
        dev.write_pod(ctx.buddy_tail_off(class), &0u64)?;
    }
    let mut last: Vec<Option<(u64, HashEntry)>> = vec![None; NUM_CLASSES];
    for level in 0..active {
        let base = ctx.layout.level_base(ctx.sub, level);
        let mut live = 0u64;
        let mut sum = 0u64;
        for i in 0..ctx.layout.level_capacity(level) {
            let rec_off = base + i * ENTRY_SIZE;
            let mut rec = ctx.entry(rec_off)?;
            if !matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED) {
                continue;
            }
            live += 1;
            sum ^= crate::hashtable::key_digest(rec.offset);
            if rec.state == state::ALLOC {
                // Allocated blocks keep their (possibly poisoned) data;
                // the typed error surfaces on read, never silently.
                continue;
            }
            let poisoned = quarantine::overlaps_any(&poison, user_base + rec.offset, rec.size);
            if poisoned {
                if rec.state == state::FREE {
                    report.blocks_quarantined += 1;
                    report.bytes_quarantined += rec.size;
                }
                rec.state = state::QUARANTINED;
                rec.flags = 0;
                rec.next_free = 0;
                rec.prev_free = 0;
                dev.write_pod(rec_off, &rec)?;
                continue;
            }
            if rec.state == state::QUARANTINED {
                report.blocks_released += 1;
            }
            let (class, _) = class_for_size(rec.size)?;
            rec.state = state::FREE;
            // The transient cache did not survive the crash: any record it
            // had withdrawn (FLAG_CACHED) goes back on the free lists.
            rec.flags = 0;
            rec.prev_free = last[class].map_or(0, |(off, _)| off);
            rec.next_free = 0;
            dev.write_pod(rec_off, &rec)?;
            match last[class] {
                Some((prev_off, mut prev)) => {
                    prev.next_free = rec_off;
                    dev.write_pod(prev_off, &prev)?;
                }
                None => dev.write_pod(ctx.buddy_head_off(class), &rec_off)?,
            }
            last[class] = Some((rec_off, rec));
        }
        dev.write_pod(ctx.level_count_off(level), &live)?;
        // A stale identity checksum means records (or the checksum line
        // itself) were destroyed, not that the level was this empty all
        // along — report the discrepancy, then write the recomputed sum
        // so the repaired heap audits clean.
        let stored: u64 = dev.read_pod(ctx.level_sum_off(level))?;
        if stored != sum {
            report.level_sums_mismatched += 1;
        }
        dev.write_pod(ctx.level_sum_off(level), &sum)?;
    }
    for (class, tail) in last.iter().enumerate() {
        if let Some((off, _)) = tail {
            dev.write_pod(ctx.buddy_tail_off(class), off)?;
        }
    }
    Ok(())
}

/// Repairs the huge-object region: scrubs its metadata, rebuilds a lost
/// header, replays (or discards) the undo log, and reconstructs the
/// extent table as a valid tiling of the data region. Reconstruction is
/// conservative: implausible slots are dropped, the coverage holes they
/// leave become `QUARANTINED` extents (never `FREE` — the bytes may hold
/// a live allocation whose record was destroyed), and quarantined
/// extents are never auto-released.
fn repair_huge(dev: &PmemDevice, layout: &HeapLayout, report: &mut RepairReport) -> Result<()> {
    if layout.huge_data_size() == 0 {
        return Ok(());
    }
    let ctx = HugeCtx { dev, layout };
    let meta = ctx.meta_base();

    // Header page, then the undo log: same policy as a sub-heap — a
    // destroyed header takes its log generation with it, so the log is
    // discarded rather than replayed at an unknown generation.
    let header_destroyed = dev.is_poisoned(meta, CACHE_LINE_SIZE);
    report.lines_scrubbed += scrub_range(dev, meta, HUGE_UNDO_OFF)?.len() as u64;
    if header_destroyed || ctx.header()?.magic != HUGE_MAGIC {
        let header = HugeHeader {
            magic: HUGE_MAGIC,
            version: FORMAT_VERSION,
            _pad: 0,
            undo_gen: 0,
            data_size: layout.huge_data_size(),
        };
        dev.write_pod(meta, &header)?;
        report.lines_scrubbed += scrub_range(dev, meta + HUGE_UNDO_OFF, HUGE_UNDO_SIZE)?.len() as u64;
        dev.punch_hole(meta + HUGE_UNDO_OFF, HUGE_UNDO_SIZE)?;
        report.huge_header_rebuilt = true;
        report.undo_logs_truncated += 1;
    } else {
        let undo_cleared = scrub_range(dev, meta + HUGE_UNDO_OFF, HUGE_UNDO_SIZE)?;
        if !undo_cleared.is_empty() {
            report.undo_logs_truncated += 1;
        }
        report.lines_scrubbed += undo_cleared.len() as u64;
        if undo::replay(dev, ctx.undo_area())? {
            report.undo_logs_replayed += 1;
        }
    }

    // Extent table: scrub, then keep only plausible records.
    let table_base = ctx.slot_off(0);
    let table_len = HUGE_EXTENT_SLOTS as u64 * crate::layout::EXTENT_RECORD_SIZE;
    report.lines_scrubbed += scrub_range(dev, table_base, table_len)?.len() as u64;
    let mut kept: Vec<ExtentRecord> = Vec::new();
    for slot in 0..HUGE_EXTENT_SLOTS {
        let rec: ExtentRecord = dev.read_pod(ctx.slot_off(slot))?;
        if rec.state == state::EMPTY {
            continue;
        }
        let plausible = matches!(rec.state, state::FREE | state::ALLOC | state::QUARANTINED)
            && rec.len > 0
            && rec.offset.is_multiple_of(PAGE_SIZE)
            && rec.len.is_multiple_of(PAGE_SIZE)
            // In-bounds and inside one band (extents never straddle a wall).
            && layout.huge_phys_of(rec.offset, rec.len).is_some();
        if plausible {
            kept.push(rec);
        } else {
            report.huge_slots_dropped += 1;
        }
    }

    // Sorted, non-overlapping: on a collision the earlier extent wins
    // and the later one is dropped (its uncovered bytes fall into the
    // quarantined holes below).
    kept.sort_by_key(|r| r.offset);
    let mut cursor = 0u64;
    kept.retain(|r| {
        if r.offset < cursor {
            report.huge_slots_dropped += 1;
            false
        } else {
            cursor = r.offset + r.len;
            true
        }
    });

    // Rebuild full coverage: holes become QUARANTINED, poisoned FREE
    // extents become QUARANTINED, everything else survives as-is.
    let poison = dev.scrub();
    let mut rebuilt: Vec<ExtentRecord> = Vec::new();
    let mut cursor = 0u64;
    for mut rec in kept {
        if rec.offset > cursor {
            report.huge_bytes_quarantined += rec.offset - cursor;
            quarantine_hole(layout, &mut rebuilt, cursor, rec.offset);
        }
        let phys = layout.huge_phys_of(rec.offset, rec.len).expect("plausibility checked above");
        if rec.state == state::FREE && quarantine::overlaps_any(&poison, phys, rec.len) {
            report.huge_bytes_quarantined += rec.len;
            rec.state = state::QUARANTINED;
        }
        cursor = rec.offset + rec.len;
        push_merged(layout, &mut rebuilt, rec);
    }
    if cursor < layout.huge_data_size() {
        report.huge_bytes_quarantined += layout.huge_data_size() - cursor;
        quarantine_hole(layout, &mut rebuilt, cursor, layout.huge_data_size());
    }

    // Pathological fallback: if the rebuilt tiling needs more slots than
    // the table holds (only possible when holes interleave with ~1024
    // surviving records), sacrifice the smallest FREE — then ALLOC —
    // extents into quarantine until it fits. Terminates: each pass
    // converts one extent to QUARANTINED, and an all-QUARANTINED tiling
    // merges to a single extent.
    while rebuilt.len() > HUGE_EXTENT_SLOTS {
        let victim = rebuilt
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != state::QUARANTINED)
            .min_by_key(|(_, r)| (r.state == state::ALLOC, r.len))
            .map(|(i, _)| i)
            .expect("an over-capacity tiling has non-quarantined extents");
        report.huge_slots_dropped += 1;
        report.huge_bytes_quarantined += rebuilt[victim].len;
        rebuilt[victim].state = state::QUARANTINED;
        let mut merged: Vec<ExtentRecord> = Vec::with_capacity(rebuilt.len());
        for rec in rebuilt {
            push_merged(layout, &mut merged, rec);
        }
        rebuilt = merged;
    }

    for slot in 0..HUGE_EXTENT_SLOTS {
        let rec = rebuilt.get(slot).copied().unwrap_or(extent_rec(0, 0, state::EMPTY));
        dev.write_pod(ctx.slot_off(slot), &rec)?;
    }
    // The rebuilt table tiles the full logical space; a `data_size`
    // still lagging from a torn grow (crash between the epoch commit and
    // its band bookkeeping) is brought up to the total to match.
    let mut header = ctx.header()?;
    if header.data_size != layout.huge_data_size() {
        header.data_size = layout.huge_data_size();
        dev.write_pod(meta, &header)?;
    }
    dev.persist(meta, layout.huge_meta_size())?;
    Ok(())
}

/// Appends `rec` to the rebuilt tiling, eagerly coalescing same-state
/// `FREE`/`QUARANTINED` neighbours — but never across a band wall,
/// where logically adjacent extents are physically disjoint.
fn push_merged(layout: &HeapLayout, rebuilt: &mut Vec<ExtentRecord>, rec: ExtentRecord) {
    match rebuilt.last_mut() {
        Some(last)
            if last.state == rec.state
                && rec.state != state::ALLOC
                && last.offset + last.len == rec.offset
                && layout.huge_band_bounds(last.offset).is_some_and(|(_, hi)| rec.offset < hi) =>
        {
            last.len += rec.len;
        }
        _ => rebuilt.push(rec),
    }
}

/// Quarantines the uncovered logical range `[start, end)`, splitting it
/// at band walls so no rebuilt extent straddles one.
fn quarantine_hole(layout: &HeapLayout, rebuilt: &mut Vec<ExtentRecord>, mut start: u64, end: u64) {
    while start < end {
        let band_hi = layout.huge_band_bounds(start).map_or(end, |(_, hi)| hi);
        let piece = end.min(band_hi) - start;
        push_merged(layout, rebuilt, extent_rec(start, piece, state::QUARANTINED));
        start += piece;
    }
}

/// Shorthand for a live [`ExtentRecord`].
fn extent_rec(offset: u64, len: u64, state: u32) -> ExtentRecord {
    ExtentRecord { offset, len, state, _pad: 0, _reserved: 0 }
}

/// Clears every poisoned line inside `[offset, offset + len)` (the device
/// zero-fills them) and returns their line-aligned offsets.
fn scrub_range(dev: &PmemDevice, offset: u64, len: u64) -> Result<Vec<u64>> {
    debug_assert_eq!(offset % CACHE_LINE_SIZE, 0);
    let mut cleared = Vec::new();
    for range in dev.scrub() {
        if !range.overlaps(offset, len) {
            continue;
        }
        let start = range.offset.max(offset);
        let end = (range.offset + range.len).min(offset + len);
        let mut line = start;
        while line < end {
            cleared.push(line);
            line += CACHE_LINE_SIZE;
        }
    }
    if !cleared.is_empty() {
        dev.clear_poison(offset, len)?;
    }
    Ok(cleared)
}

/// Whether any of `lines` falls inside `[offset, offset + len)`.
fn overlaps_lines(lines: &[u64], offset: u64, len: u64) -> bool {
    lines.iter().any(|&line| line >= offset && line < offset + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{HeapConfig, PoseidonHeap};
    use crate::subheap;
    use pmem::DeviceConfig;
    use std::sync::Arc;

    fn build_heap() -> (Arc<PmemDevice>, Vec<crate::NvmPtr>) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let mut live = Vec::new();
        for cpu in 0..2usize {
            let _pin = pmem::numa::CpuPinGuard::pin(cpu);
            for i in 0..32u64 {
                let p = heap.alloc(64 + i % 200).unwrap();
                if i % 2 == 0 {
                    heap.free(p).unwrap();
                } else {
                    live.push(p);
                }
            }
        }
        heap.set_root(live[0]).unwrap();
        heap.close().unwrap();
        (dev, live)
    }

    /// Audits one sub-heap through a throwaway session (the heap is
    /// closed, so its pages carry no protection key).
    fn audit_sub(dev: &Arc<PmemDevice>, layout: &HeapLayout, sub: u16) -> subheap::SubheapAudit {
        let op = crate::session::OpSession::unguarded(SubCtx { dev, layout, sub }).unwrap();
        subheap::audit(&op).unwrap()
    }

    fn reload_and_audit(dev: &Arc<PmemDevice>) -> PoseidonHeap {
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert!(heap.quarantined_subheaps().is_empty(), "repair must leave no wholesale quarantine");
        heap.audit().unwrap();
        heap
    }

    #[test]
    fn clean_heap_repair_is_a_no_op() {
        let (dev, live) = build_heap();
        let report = repair(&dev).unwrap();
        assert!(!report.damage_found());
        assert_eq!(report.subheaps_repaired, 2);
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    }

    #[test]
    fn poisoned_table_entry_is_tombstoned_without_losing_neighbours() {
        let (dev, live) = build_heap();
        // Poison one hash-table line of sub-heap 0.
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        // Find a FREE record and poison its table line.
        let victim = (0..layout.level_capacity(0))
            .map(|i| layout.level_base(0, 0) + i * ENTRY_SIZE)
            .find(|&off| ctx.entry(off).unwrap().state == state::FREE)
            .expect("a free record exists");
        dev.poison(victim, 1).unwrap();

        let report = repair(&dev).unwrap();
        assert!(report.damage_found());
        assert_eq!(report.entries_tombstoned, 1);
        assert_eq!(ctx.entry(victim).unwrap().state, state::TOMBSTONE);

        // The heap loads clean and every surviving allocation is intact.
        let heap = reload_and_audit(&dev);
        assert!(!heap.root().unwrap().is_null());
        for p in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    }

    #[test]
    fn lost_level_records_are_flagged_by_the_identity_checksum() {
        let (dev, _) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        // Destroy one live record *and* its level's live-count word: the
        // rebuilt count then matches the surviving records, so without an
        // independent witness the level would look like it never held the
        // record. The identity checksum (a different line) still carries
        // the lost key and flags the damage.
        let victim = (0..layout.level_capacity(0))
            .map(|i| layout.level_base(0, 0) + i * ENTRY_SIZE)
            .find(|&off| matches!(ctx.entry(off).unwrap().state, state::FREE | state::ALLOC))
            .expect("a live record exists");
        dev.poison(victim, 1).unwrap();
        dev.poison(ctx.level_count_off(0), 1).unwrap();

        let report = repair(&dev).unwrap();
        assert_eq!(report.level_sums_mismatched, 1, "checksum must flag the lost record");
        assert_eq!(report.entries_tombstoned, 1);

        // The recomputed checksum was written back: the heap audits clean
        // and a second pass sees a genuinely consistent (not emptied) level.
        let heap = reload_and_audit(&dev);
        heap.close().unwrap();
        let second = repair(&dev).unwrap();
        assert_eq!(second.level_sums_mismatched, 0);
    }

    #[test]
    fn poisoned_free_block_stays_quarantined_and_returns_after_clear() {
        let (dev, _) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let (_, rec) = (0..layout.level_capacity(0))
            .map(|i| layout.level_base(0, 0) + i * ENTRY_SIZE)
            .map(|off| (off, ctx.entry(off).unwrap()))
            .find(|(_, e)| e.state == state::FREE)
            .unwrap();
        let user_off = ctx.user_base() + rec.offset;
        dev.poison(user_off, 1).unwrap();

        let report = repair(&dev).unwrap();
        assert_eq!(report.blocks_quarantined, 1);
        assert_eq!(report.bytes_quarantined, rec.size);
        let audit = audit_sub(&dev, &layout, 0);
        assert_eq!(audit.quarantined_blocks, 1);

        // Operator clears the poison; the next repair releases the block.
        dev.clear_poison(user_off, rec.size).unwrap();
        let report = repair(&dev).unwrap();
        assert_eq!(report.blocks_released, 1);
        let audit = audit_sub(&dev, &layout, 0);
        assert_eq!(audit.quarantined_blocks, 0);
        reload_and_audit(&dev);
    }

    #[test]
    fn destroyed_subheap_header_is_rebuilt() {
        let (dev, live) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        dev.poison(layout.meta_base(1), 1).unwrap();

        let report = repair(&dev).unwrap();
        assert_eq!(report.headers_rebuilt, 1);
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 1 };
        assert_eq!(ctx.header().unwrap().magic, SUBHEAP_MAGIC);
        audit_sub(&dev, &layout, 1);

        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }

    #[test]
    fn poisoned_directory_line_is_reconstructed() {
        let (dev, live) = build_heap();
        dev.poison(SB_DIR_OFF, 1).unwrap();
        let report = repair(&dev).unwrap();
        // Both sub-heaps were created; both entries come back.
        assert_eq!(report.directory_entries_rebuilt, 2);
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }

    #[test]
    fn poisoned_superblock_header_is_fatal() {
        let (dev, _) = build_heap();
        dev.poison(0, 1).unwrap();
        assert!(matches!(repair(&dev), Err(PoseidonError::MediaError { .. })));
    }

    #[test]
    fn poisoned_huge_header_is_rebuilt_and_extents_survive() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let big = heap.alloc(layout.max_alloc() + 1).unwrap();
        heap.close().unwrap();
        dev.poison(layout.huge_meta_base(), 1).unwrap();

        // Load-time recovery can only quarantine the region wholesale.
        let h = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert!(h.recovery_report().huge_region_quarantined);
        assert!(matches!(h.alloc(layout.max_alloc() + 1), Err(PoseidonError::SubheapQuarantined { .. })));
        assert!(h.huge_audit().unwrap().is_none());
        h.close().unwrap();

        // Repair rebuilds the header; the extent table was never damaged.
        let report = repair(&dev).unwrap();
        assert!(report.huge_header_rebuilt);
        assert_eq!(report.huge_slots_dropped, 0);
        let heap = reload_and_audit(&dev);
        assert!(!heap.recovery_report().huge_region_quarantined);
        let audit = heap.huge_audit().unwrap().expect("huge region live again");
        assert_eq!(audit.alloc_extents, 1);
        heap.free(big).unwrap();
        assert_eq!(heap.huge_audit().unwrap().unwrap().alloc_extents, 0);
    }

    #[test]
    fn destroyed_extent_slots_leave_a_quarantined_hole() {
        use crate::layout::{EXTENT_RECORD_SIZE, HUGE_TABLE_OFF};

        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(4)).unwrap();
        let layout = HeapLayout::compute(64 << 20, 4).unwrap();
        let need = (layout.max_alloc() + pmem::PAGE_SIZE) & !(pmem::PAGE_SIZE - 1);
        // Slot 0 = ALLOC a, slot 1 = ALLOC b, slot 2 = FREE remainder.
        let a = heap.alloc(layout.max_alloc() + 1).unwrap();
        let b = heap.alloc(layout.max_alloc() + 1).unwrap();
        heap.close().unwrap();
        // Destroy the cache line holding slots 2–3: the FREE remainder's
        // record is lost, so its bytes must come back QUARANTINED.
        dev.poison(layout.huge_meta_base() + HUGE_TABLE_OFF + 2 * EXTENT_RECORD_SIZE, 1).unwrap();

        let report = repair(&dev).unwrap();
        assert!(report.damage_found());
        let hole = layout.huge_data_size() - 2 * need;
        assert_eq!(report.huge_bytes_quarantined, hole);

        let heap = reload_and_audit(&dev);
        let audit = heap.huge_audit().unwrap().unwrap();
        assert_eq!(audit.alloc_extents, 2);
        assert_eq!(audit.quarantined_bytes, hole);
        assert_eq!(audit.free_bytes, 0);
        // The surviving allocations are intact and freeable; the
        // quarantined hole is never handed out again.
        heap.free(a).unwrap();
        heap.free(b).unwrap();
        let audit = heap.huge_audit().unwrap().unwrap();
        assert_eq!(audit.free_bytes, 2 * need);
        assert_eq!(audit.quarantined_bytes, hole);
    }

    #[test]
    fn online_condemned_subheap_is_lifted_by_repair() {
        let (dev, live) = build_heap();
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert!(heap.condemn_subheap(0).unwrap());
        assert_eq!(heap.quarantined_subheaps(), vec![0]);
        heap.close().unwrap();

        // The condemnation is persistent: a plain reload still honours it.
        let h = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert_eq!(h.quarantined_subheaps(), vec![0]);
        h.close().unwrap();

        // Repair rebuilds the condemned sub-heap and lifts the verdict.
        let report = repair(&dev).unwrap();
        assert_eq!(report.quarantines_lifted, 1);
        assert_eq!(report.subheaps_repaired, 2);
        assert!(report.damage_found());
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    }

    #[test]
    fn repair_is_idempotent() {
        let (dev, live) = build_heap();
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        dev.poison(layout.meta_base(0) + SH_TABLE_OFF, 1).unwrap();
        dev.poison(layout.meta_base(0) + SH_UNDO_OFF, 1).unwrap();
        repair(&dev).unwrap();
        let second = repair(&dev).unwrap();
        assert!(!second.damage_found());
        let heap = reload_and_audit(&dev);
        for p in live {
            heap.free(p).unwrap();
        }
    }
}
