//! Heap recovery (§5.1, §5.8).
//!
//! On load, every log is checked: a non-empty undo log means an operation
//! was interrupted and is rolled back; a non-empty micro log means a
//! transaction never committed and its allocations are freed. Both
//! replays are idempotent, so a crash *during* recovery simply replays
//! again — undo restoration rewrites the same old bytes, and micro-log
//! frees of already-freed blocks are rejected as double frees and
//! skipped.

use pmem::PmemDevice;

use crate::error::{PoseidonError, Result};
use crate::layout::HeapLayout;
use crate::microlog;
use crate::persist::SubCtx;
use crate::subheap;
use crate::superblock;
use crate::undo;

/// What recovery found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether the superblock undo log was replayed.
    pub superblock_undo_replayed: bool,
    /// Number of sub-heap undo logs replayed.
    pub subheap_undos_replayed: u32,
    /// Allocations freed from uncommitted transactions (micro logs).
    pub tx_allocations_reverted: u32,
}

impl RecoveryReport {
    /// Whether the previous session ended in a crash mid-operation.
    pub fn crash_detected(&self) -> bool {
        self.superblock_undo_replayed || self.subheap_undos_replayed > 0 || self.tx_allocations_reverted > 0
    }
}

/// Runs full recovery. The caller holds the MPK write guard (§5.1 grants
/// write access to metadata for the duration of recovery).
pub(crate) fn recover(dev: &PmemDevice, layout: &HeapLayout) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    report.superblock_undo_replayed = undo::replay(dev, superblock::undo_area())?;
    for sub in 0..layout.num_subheaps {
        if superblock::dir_entry(dev, sub)?.state != 1 {
            continue;
        }
        let ctx = SubCtx { dev, layout, sub };
        if undo::replay(dev, ctx.undo_area())? {
            report.subheap_undos_replayed += 1;
        }
        // Free every address an uncommitted transaction logged (§4.5) —
        // any non-empty slot belongs to a transaction that never
        // committed.
        for slot in microlog::all_slots() {
            let pending = microlog::entries(&ctx, slot)?;
            if pending.is_empty() {
                continue;
            }
            for ptr in pending {
                if ptr.subheap() != sub {
                    return Err(PoseidonError::Corrupted("micro-log entry for a foreign sub-heap"));
                }
                match subheap::free_block(&ctx, ptr.offset()) {
                    Ok(_) => report.tx_allocations_reverted += 1,
                    // Replay idempotence: a crash during a previous
                    // recovery may have freed this one already.
                    Err(PoseidonError::DoubleFree { .. }) | Err(PoseidonError::InvalidFree { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            microlog::truncate(&ctx, slot)?;
        }
    }
    Ok(report)
}
