//! Heap recovery (§5.1, §5.8) with media-error degradation.
//!
//! On load, every log is checked: a non-empty undo log means an operation
//! was interrupted and is rolled back; a non-empty micro log means a
//! transaction never committed and its allocations are freed. Both
//! replays are idempotent, so a crash *during* recovery simply replays
//! again — undo restoration rewrites the same old bytes, and micro-log
//! frees of already-freed blocks are rejected as double frees and
//! skipped.
//!
//! Recovery also degrades gracefully under uncorrectable media errors:
//! the superblock undo log is the only hard dependency (it guards the
//! root pointer — poison there fails the load with a typed
//! [`PoseidonError::MediaError`]). Each sub-heap is salvaged
//! independently: if its metadata region is poison-free and its logs
//! replay cleanly, only the *free blocks* overlapping poisoned user
//! lines are quarantined; otherwise the whole sub-heap is quarantined
//! (volatile — the heap refuses to operate on it until `pfsck --repair`
//! rebuilds its metadata) and the rest of the heap loads normally.
//!
//! The undo replay itself stays *device-backed* (it must work before any
//! session state exists); everything after it runs through one
//! [`OpSession`] per sub-heap, so the whole salvage of a sub-heap costs a
//! single metadata-range validation.

use pmem::PmemDevice;

use crate::error::{OpKind, PoseidonError, Result};
use crate::hugeregion::{self, HUGE_SUBHEAP};
use crate::layout::HeapLayout;
use crate::microlog;
use crate::persist::{HugeCtx, SubCtx};
use crate::quarantine;
use crate::session::OpSession;
use crate::subheap;
use crate::superblock;
use crate::undo;

/// What recovery found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether the superblock undo log was replayed.
    pub superblock_undo_replayed: bool,
    /// Number of sub-heap undo logs replayed.
    pub subheap_undos_replayed: u32,
    /// Allocations freed from uncommitted transactions (micro logs).
    pub tx_allocations_reverted: u32,
    /// Sub-heaps quarantined wholesale (poisoned metadata or an
    /// unreadable log); their blocks are frozen until `pfsck --repair`.
    pub subheaps_quarantined: u32,
    /// Blocks the transient caching layer had withdrawn from the free
    /// lists when the previous session ended; recovery relinks them (they
    /// stayed `FREE` on media by construction, so nothing is lost).
    pub cached_blocks_reclaimed: u64,
    /// Free blocks individually quarantined on otherwise-healthy
    /// sub-heaps because their user bytes overlap poisoned lines.
    pub blocks_quarantined: u64,
    /// Bytes covered by the individually quarantined blocks.
    pub bytes_quarantined: u64,
    /// Whether the huge region's undo log was replayed.
    pub huge_undo_replayed: bool,
    /// Whether the whole huge region was quarantined (poisoned or
    /// unvalidatable extent-table metadata); huge allocation is refused
    /// until `pfsck --repair` rebuilds it.
    pub huge_region_quarantined: bool,
    /// Free huge extents converted to quarantined ones because their
    /// data pages overlap poisoned lines.
    pub huge_extents_quarantined: u64,
    /// Bytes covered by the quarantined huge extents.
    pub huge_bytes_quarantined: u64,
    /// Huge-region bytes whose bookkeeping recovery completed because a
    /// crash tore a [`grow`](crate::PoseidonHeap::grow) between its epoch
    /// commit and the band's extent-table entry (0 on a clean open).
    pub huge_bytes_materialised: u64,
}

impl RecoveryReport {
    /// Whether the previous session ended in a crash mid-operation.
    pub fn crash_detected(&self) -> bool {
        self.superblock_undo_replayed
            || self.subheap_undos_replayed > 0
            || self.tx_allocations_reverted > 0
            || self.huge_undo_replayed
    }

    /// Whether recovery had to quarantine anything (media damage).
    pub fn media_damage_detected(&self) -> bool {
        self.subheaps_quarantined > 0
            || self.blocks_quarantined > 0
            || self.huge_region_quarantined
            || self.huge_extents_quarantined > 0
    }
}

/// Runs full recovery. The caller holds the MPK write guard (§5.1 grants
/// write access to metadata for the duration of recovery). Returns the
/// report and the indices of wholesale-quarantined sub-heaps.
pub(crate) fn recover(dev: &PmemDevice, layout: &HeapLayout) -> Result<(RecoveryReport, Vec<u16>)> {
    let mut report = RecoveryReport::default();
    let poison = dev.scrub();
    // The superblock undo log protects the root pointer and the heap's
    // identity: poison here is unrecoverable in-process, so the typed
    // media error propagates and the load fails.
    report.superblock_undo_replayed = undo::replay(dev, superblock::undo_area())?;
    // The huge region recovers *before* the sub-heaps: a transactional
    // huge allocation logs its micro-log words in the *huge* undo log
    // (one atomic scope spanning extent table and micro slot), so that
    // replay must land before any sub-heap walks its micro logs.
    let mut huge_ok = false;
    if layout.huge_data_size() > 0 {
        let hctx = HugeCtx { dev, layout };
        let salvage = if quarantine::overlaps_any(&poison, hctx.meta_base(), layout.huge_meta_size()) {
            // Same policy as a poisoned sub-heap: a half-readable extent
            // table is worse than a frozen one.
            Err(PoseidonError::MediaError { offset: hctx.meta_base(), during: OpKind::Recovery })
        } else {
            hugeregion::validate(&hctx).and_then(|()| {
                if undo::replay(dev, hctx.undo_area())? {
                    report.huge_undo_replayed = true;
                }
                Ok(())
            })
        };
        match salvage {
            Ok(()) => {
                huge_ok = true;
                let op = hugeregion::HugeOp::unguarded(HugeCtx { dev, layout })?;
                // A crash between a grow's epoch commit and its huge-band
                // bookkeeping leaves the committed layout ahead of the
                // extent table; finish the (idempotent) completion here so
                // the torn grow fully applies.
                report.huge_bytes_materialised = hugeregion::extend_to_layout(&op)?;
                if !poison.is_empty() {
                    let (extents, bytes) = hugeregion::quarantine_poisoned(&op, &poison)?;
                    report.huge_extents_quarantined += extents;
                    report.huge_bytes_quarantined += bytes;
                }
            }
            Err(PoseidonError::MediaError { .. }) | Err(PoseidonError::Corrupted(_)) => {
                report.huge_region_quarantined = true;
            }
            Err(e) => return Err(e),
        }
    }
    let mut quarantined_subs = Vec::new();
    for sub in 0..layout.num_subheaps() {
        let ctx = SubCtx { dev, layout, sub };
        let dir_state = superblock::dir_entry(dev, sub)?.state;
        if dir_state == superblock::DIR_QUARANTINED {
            // The previous session condemned this sub-heap online (live
            // media fault) and committed the verdict to the directory.
            // Honour it without touching the damaged region — and without
            // clearing its poison, which `pfsck --repair` uses to decide
            // what to rebuild.
            report.subheaps_quarantined += 1;
            quarantined_subs.push(sub);
            continue;
        }
        if dir_state != 1 {
            // Not (yet) published: the crash may have hit mid-creation,
            // after metadata lines were written — and possibly poisoned —
            // but before the directory entry committed. Nothing in here is
            // reachable, so scrub the poison away; a later fresh claim
            // must start from clean media or its re-initialising plain
            // writes would leave live poison under the new structures.
            if quarantine::overlaps_any(&poison, ctx.meta_base(), layout.meta_size) {
                dev.clear_poison(ctx.meta_base(), layout.meta_size)?;
            }
            if quarantine::overlaps_any(&poison, ctx.user_base(), layout.user_size) {
                dev.clear_poison(ctx.user_base(), layout.user_size)?;
            }
            continue;
        }
        let meta_poisoned = quarantine::overlaps_any(&poison, ctx.meta_base(), layout.meta_size);
        // One session per sub-heap: the metadata range is validated once
        // and every replay/quarantine word access below goes through it.
        let salvage = if meta_poisoned {
            // Don't even try: metadata reads could fail at any later
            // operation, and a half-replayed log is worse than none.
            Err(PoseidonError::MediaError { offset: ctx.meta_base(), during: OpKind::Recovery })
        } else {
            OpSession::unguarded(ctx).and_then(|op| {
                recover_sub(&op, huge_ok, &mut report)?;
                Ok(op)
            })
        };
        match salvage {
            Ok(op) => {
                let (blocks, bytes) = quarantine::isolate_poisoned_free_blocks(&op, &poison)?;
                report.blocks_quarantined += blocks;
                report.bytes_quarantined += bytes;
            }
            Err(PoseidonError::MediaError { .. }) => {
                report.subheaps_quarantined += 1;
                quarantined_subs.push(sub);
            }
            Err(e) => return Err(e),
        }
    }
    Ok((report, quarantined_subs))
}

/// Replays one sub-heap's undo and micro logs. `huge_ok` says whether
/// the huge region was salvaged, i.e. whether micro-log entries carrying
/// the [`HUGE_SUBHEAP`] sentinel can be freed through it.
fn recover_sub(op: &OpSession<'_>, huge_ok: bool, report: &mut RecoveryReport) -> Result<()> {
    // The undo replay reads the log directly from the device: it is the
    // recovery oracle and must see exactly the persisted bytes, with no
    // session state in between.
    if undo::replay(op.ctx.dev, op.ctx.undo_area())? {
        report.subheap_undos_replayed += 1;
    }
    // Free every address an uncommitted transaction logged (§4.5) —
    // any non-empty slot belongs to a transaction that never
    // committed.
    for slot in microlog::all_slots() {
        let pending = microlog::entries(op, slot)?;
        if pending.is_empty() {
            continue;
        }
        for ptr in pending {
            if ptr.subheap() == HUGE_SUBHEAP && op.ctx.layout.huge_data_size() > 0 {
                // A huge extent allocated by the uncommitted transaction:
                // revert it through the huge region. When that region is
                // quarantined the extent is leaked (stays marked
                // allocated, and the slot truncation below drops the
                // entry) rather than risking a stale free after `pfsck
                // --repair` rebuilds the table.
                if huge_ok {
                    let hctx = HugeCtx { dev: op.ctx.dev, layout: op.ctx.layout };
                    let hop = hugeregion::HugeOp::unguarded(hctx)?;
                    match hugeregion::free(&hop, ptr.offset()) {
                        Ok(_) => report.tx_allocations_reverted += 1,
                        // Same idempotence rule as below: an earlier,
                        // interrupted recovery may already have freed it.
                        Err(PoseidonError::DoubleFree { .. }) | Err(PoseidonError::InvalidFree { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                continue;
            }
            if ptr.subheap() != op.ctx.sub {
                return Err(PoseidonError::Corrupted("micro-log entry for a foreign sub-heap"));
            }
            match subheap::free_block(op, ptr.offset()) {
                Ok(outcome) => {
                    report.tx_allocations_reverted += 1;
                    // A reverted allocation overlapping poison goes
                    // straight to quarantine; fold it into the same
                    // report fields the free-block scan feeds.
                    if outcome.quarantined {
                        report.blocks_quarantined += 1;
                        report.bytes_quarantined += outcome.size;
                    }
                }
                // Replay idempotence: a crash during a previous
                // recovery may have freed this one already.
                Err(PoseidonError::DoubleFree { .. }) | Err(PoseidonError::InvalidFree { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        microlog::truncate(op, slot)?;
    }
    // The transient cache did not survive the restart: relink every
    // record it had withdrawn (FREE + FLAG_CACHED) before the poison scan
    // below, so a reclaimed block overlapping a poisoned line is
    // quarantined like any other free block.
    report.cached_blocks_reclaimed += subheap::reclaim_cached(op)?;
    Ok(())
}
