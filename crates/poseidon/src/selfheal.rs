//! Online self-healing: live media-fault quarantine, allocation
//! failover, and the budgeted background scrubber.
//!
//! PR 2's fault model degrades gracefully at *load* time; this module is
//! the serving-time half. When an operation trips
//! [`PmemError::Uncorrectable`](pmem::PmemError) mid-flight, the undo
//! scope that was open rolls the operation back (its `Drop` already
//! guarantees that), and the error surfaces here, where the damaged unit
//! is quarantined **live** at the right granularity:
//!
//! * **metadata poison** → the whole sub-heap is condemned: its volatile
//!   flag flips first (routing skips it immediately), its transient cache
//!   state is invalidated in DRAM (magazines, transfer pools, residency
//!   bytes — nothing touches the damaged media), and the verdict is made
//!   persistent by flipping the sub-heap's directory entry to
//!   [`superblock::DIR_QUARANTINED`] under the superblock undo log's
//!   two-fence commit. Every future load honours the entry without
//!   touching the region.
//! * **user-data poison** → only the free blocks overlapping the poison
//!   are moved to the persistent `QUARANTINED` record state (the same
//!   block-granularity machinery recovery uses).
//! * **huge region** → extent-granularity for data poison, wholesale
//!   (volatile flag; the poison itself is the persistent record) for
//!   extent-table poison.
//!
//! Allocations then **fail over**: the alloc paths retry on the next
//! healthy sub-heap, bounded by the sub-heap count, and return the typed
//! [`PoseidonError::AllFailed`] only when every sub-heap is condemned.
//! Frees and pinned transactions cannot fail over (the caller holds a
//! pointer into the damaged unit) and return the attributed error.
//!
//! The **scrubber** ([`PoseidonHeap::scrub_step`]) walks one unit
//! (sub-heap or huge region) per budget tick, checking its free lists and
//! extent table against the device's poison list and promoting anything
//! it finds to quarantine *before* a user thread trips on it. It is
//! incremental and budgeted so a `platform` thread can drive it
//! concurrently with the serving loop ([`PoseidonHeap::scrub_until`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::error::{OpKind, PoseidonError, Result};
use crate::heap::PoseidonHeap;
use crate::hugeregion;
use crate::layout::HeapLayout;
use crate::quarantine;
use crate::superblock;

/// Which layout unit a device offset falls in — the quarantine
/// granularity decision for a live media fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultUnit {
    /// The superblock region (header, directory, superblock undo log).
    Superblock,
    /// Sub-heap `sub`'s metadata region (header, lists, logs, table).
    SubMeta(u16),
    /// Sub-heap `sub`'s user-data region.
    SubUser(u16),
    /// The huge region's metadata (header, undo log, extent table).
    HugeMeta,
    /// The huge region's data pages.
    HugeData,
    /// Outside every region (never expected from a live operation).
    Unknown,
}

/// Maps a device offset to the layout unit containing it (epoch-aware:
/// delegates to the layout's region classifier).
pub(crate) fn fault_unit(layout: &HeapLayout, offset: u64) -> FaultUnit {
    match layout.locate(offset) {
        crate::layout::Region::Superblock => FaultUnit::Superblock,
        crate::layout::Region::SubMeta(sub) => FaultUnit::SubMeta(sub),
        crate::layout::Region::SubUser(sub) => FaultUnit::SubUser(sub),
        crate::layout::Region::HugeMeta => FaultUnit::HugeMeta,
        crate::layout::Region::HugeData { .. } => FaultUnit::HugeData,
        crate::layout::Region::Unused => FaultUnit::Unknown,
    }
}

/// Volatile self-healing counters of one heap (reset on open).
#[derive(Debug, Default)]
pub(crate) struct HealthCounters {
    pub(crate) media_errors_alloc: AtomicU64,
    pub(crate) media_errors_free: AtomicU64,
    pub(crate) media_errors_tx: AtomicU64,
    pub(crate) media_errors_scrub: AtomicU64,
    pub(crate) failovers: AtomicU64,
    pub(crate) subheaps_condemned: AtomicU64,
    pub(crate) blocks_quarantined: AtomicU64,
    pub(crate) extents_quarantined: AtomicU64,
    pub(crate) cache_blocks_invalidated: AtomicU64,
    pub(crate) scrub_steps: AtomicU64,
    pub(crate) scrub_passes: AtomicU64,
    pub(crate) scrub_cursor: AtomicU64,
    // Maintenance engine (see [`crate::maintenance`]): its own cursor
    // over the same unit partition the scrubber walks, plus the cached
    // trigger inputs the fragmentation walk refreshes.
    pub(crate) maint_steps: AtomicU64,
    pub(crate) maint_passes: AtomicU64,
    pub(crate) maint_cursor: AtomicU64,
    pub(crate) maint_merges: AtomicU64,
    pub(crate) maint_levels_shrunk: AtomicU64,
    pub(crate) maint_blocks_trimmed: AtomicU64,
    /// NoSpace/TooLarge pressure feedback — the alloc paths set it, a
    /// fully-defragged maintenance pass clears it.
    pub(crate) maint_pressure: AtomicBool,
    /// Largest free huge extent from the last huge scan; meaningless
    /// until `maint_huge_sampled` is set.
    pub(crate) huge_largest_free: AtomicU64,
    pub(crate) maint_huge_sampled: AtomicBool,
    /// Fragmented / total free bytes from the last fragmentation walk
    /// (the watermark inputs for [`PoseidonHeap::maint_needed`]).
    pub(crate) maint_frag_bytes: AtomicU64,
    pub(crate) maint_free_bytes: AtomicU64,
}

impl HealthCounters {
    fn media_counter(&self, during: OpKind) -> &AtomicU64 {
        match during {
            OpKind::Free => &self.media_errors_free,
            OpKind::Tx => &self.media_errors_tx,
            OpKind::Scrub => &self.media_errors_scrub,
            _ => &self.media_errors_alloc,
        }
    }
}

/// A heap's health report: what the self-healing layer has quarantined,
/// how far the scrubber has come, and the media-error counters — the
/// serving-time counterpart of [`RecoveryReport`](crate::RecoveryReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapHealth {
    /// Sub-heaps currently quarantined (load-time plus live).
    pub quarantined_subheaps: u32,
    /// Whether the huge region is currently quarantined wholesale.
    pub huge_region_quarantined: bool,
    /// Cache lines the device currently reports as poisoned.
    pub poisoned_lines: u64,
    /// Mid-operation media errors hit on allocation paths this session.
    pub media_errors_during_alloc: u64,
    /// Mid-operation media errors hit on free paths this session.
    pub media_errors_during_free: u64,
    /// Mid-operation media errors hit on transaction paths this session.
    pub media_errors_during_tx: u64,
    /// Media errors the scrubber hit (or damage it promoted) proactively.
    pub media_errors_during_scrub: u64,
    /// Allocations that transparently retried on another sub-heap after a
    /// live media fault.
    pub failovers: u64,
    /// Sub-heaps condemned live (persistently, via their directory entry).
    pub subheaps_condemned_live: u64,
    /// Blocks moved to the `QUARANTINED` record state live.
    pub blocks_quarantined_live: u64,
    /// Huge extents moved to the `QUARANTINED` state live.
    pub extents_quarantined_live: u64,
    /// Cached blocks invalidated in DRAM when their sub-heap was
    /// condemned (magazine rounds, pool slots, residency bytes).
    pub cache_blocks_invalidated: u64,
    /// Completed [`scrub_step`](PoseidonHeap::scrub_step) calls.
    pub scrub_steps: u64,
    /// Completed full passes over every unit (sub-heaps + huge region).
    pub scrub_passes: u64,
    /// Completed [`maint_step`](PoseidonHeap::maint_step) calls.
    pub maint_steps: u64,
    /// Completed full maintenance passes over every unit.
    pub maint_passes: u64,
    /// Buddy merges committed by the maintenance engine this session.
    pub maint_merges: u64,
    /// Hash-table levels retired by the maintenance engine this session.
    pub maint_table_levels_shrunk: u64,
    /// Cold cached blocks handed back to the free lists by maintenance
    /// trim units this session.
    pub maint_blocks_trimmed: u64,
}

impl HeapHealth {
    /// Total mid-operation media errors across every path.
    pub fn live_media_errors(&self) -> u64 {
        self.media_errors_during_alloc
            + self.media_errors_during_free
            + self.media_errors_during_tx
            + self.media_errors_during_scrub
    }

    /// Whether the self-healing layer has quarantined anything live.
    pub fn damage_contained(&self) -> bool {
        self.subheaps_condemned_live > 0
            || self.blocks_quarantined_live > 0
            || self.extents_quarantined_live > 0
    }
}

/// What one [`PoseidonHeap::scrub_step`] (or an accumulated
/// [`scrub_until`](PoseidonHeap::scrub_until) run) examined and promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubStep {
    /// Units (sub-heaps or the huge region) examined.
    pub units_examined: u64,
    /// Full passes over every unit completed.
    pub passes_completed: u64,
    /// Sub-heaps condemned wholesale (metadata poison found).
    pub subheaps_condemned: u64,
    /// Free blocks promoted to `QUARANTINED` (user-data poison found).
    pub blocks_quarantined: u64,
    /// Bytes covered by the promoted blocks.
    pub bytes_quarantined: u64,
    /// Huge extents promoted to `QUARANTINED`.
    pub extents_quarantined: u64,
    /// Whether this step quarantined the huge region wholesale.
    pub huge_region_quarantined: bool,
}

impl ScrubStep {
    /// Whether the step promoted any damage to quarantine.
    pub fn found_damage(&self) -> bool {
        self.subheaps_condemned > 0
            || self.blocks_quarantined > 0
            || self.extents_quarantined > 0
            || self.huge_region_quarantined
    }

    /// Folds another step's tallies into this one.
    pub fn absorb(&mut self, other: &ScrubStep) {
        self.units_examined += other.units_examined;
        self.passes_completed += other.passes_completed;
        self.subheaps_condemned += other.subheaps_condemned;
        self.blocks_quarantined += other.blocks_quarantined;
        self.bytes_quarantined += other.bytes_quarantined;
        self.extents_quarantined += other.extents_quarantined;
        self.huge_region_quarantined |= other.huge_region_quarantined;
    }
}

impl PoseidonHeap {
    /// Condemns sub-heap `sub` after a live media fault: volatile flag
    /// first (routing and the cache frontend skip it from this instant),
    /// then DRAM cache invalidation, then the persistent directory flip
    /// under the superblock undo log's two-fence commit. Idempotent;
    /// returns whether this call was the one that condemned it.
    pub(crate) fn condemn_subheap(&self, sub: u16) -> Result<bool> {
        if self.slots[sub as usize].quarantined.swap(true, Ordering::AcqRel) {
            return Ok(false);
        }
        // DRAM only: the damaged sub-heap's media is never touched. Any
        // block the cache held for it is dropped from circulation here;
        // the media records stay FREE+FLAG_CACHED and `pfsck --repair`
        // reconciles them with everything else.
        if let Some(cache) = self.cache() {
            let invalidated = cache.condemn(sub);
            self.health.cache_blocks_invalidated.fetch_add(invalidated as u64, Ordering::Relaxed);
        }
        self.health.subheaps_condemned.fetch_add(1, Ordering::Relaxed);
        // Persist the verdict. Best-effort by design: if the superblock
        // undo area is itself damaged this returns the error, but the
        // volatile flag above already isolates the sub-heap for this
        // session, and the metadata poison re-quarantines it on reload.
        let _guard = self.write_guard();
        let _sb = self.sb_lock.lock();
        superblock::quarantine_subheap(&self.dev, sub)?;
        Ok(true)
    }

    /// Quarantines every free block of `sub` whose user bytes overlap
    /// currently poisoned lines (block granularity, persistent records).
    ///
    /// The sub-heap's transient cache is drained back to the free lists
    /// first, under the same op session, so a poisoned block sitting in a
    /// magazine or transfer pool becomes a plain `FREE` record the
    /// isolation walk can withdraw — the lock held across both steps
    /// means no refill can re-withdraw it in between. Blocks checked out
    /// to the application stay out (the caller owns them; their poison
    /// surfaces as a typed read error, and a later scrub pass catches
    /// them once they come back).
    fn quarantine_poisoned_blocks_on(&self, sub: u16) -> Result<(u64, u64)> {
        if !self.sub_usable(sub) {
            return Ok((0, 0));
        }
        let poison = self.dev.scrub();
        if poison.is_empty() {
            return Ok((0, 0));
        }
        let op = self.begin_op(sub)?;
        let mut drained_quarantined = 0u64;
        if let Some(cache) = self.cache() {
            let victims = cache.evict_resident(sub);
            if !victims.is_empty() {
                drained_quarantined = crate::subheap::drain_blocks(&op, &victims)?;
                cache.clear(sub, &victims);
            }
        }
        let (blocks, bytes) = quarantine::isolate_poisoned_free_blocks(&op, &poison)?;
        drop(op);
        self.health.blocks_quarantined.fetch_add(blocks + drained_quarantined, Ordering::Relaxed);
        Ok((blocks + drained_quarantined, bytes))
    }

    /// Quarantines every free huge extent overlapping poisoned data pages.
    fn quarantine_poisoned_extents(&self) -> Result<(u64, u64)> {
        let poison = self.dev.scrub();
        let op = self.begin_huge()?;
        let (extents, bytes) = hugeregion::quarantine_poisoned(&op, &poison)?;
        drop(op);
        self.health.extents_quarantined.fetch_add(extents, Ordering::Relaxed);
        Ok((extents, bytes))
    }

    /// The live self-healing dispatcher: given an error that just aborted
    /// an operation (the undo scope already rolled it back), quarantine
    /// the damaged unit at the right granularity and report whether the
    /// caller may retry on healthy capacity. Non-media errors pass
    /// through untouched (`retryable = false`).
    pub(crate) fn heal_media_error(&self, e: PoseidonError, during: OpKind) -> (PoseidonError, bool) {
        let PoseidonError::MediaError { offset, .. } = e else { return (e, false) };
        self.health.media_counter(during).fetch_add(1, Ordering::Relaxed);
        let attributed = e.attribute(during);
        match fault_unit(&self.layout, offset) {
            FaultUnit::SubMeta(sub) if sub < self.layout.num_subheaps() => {
                // Whole-sub-heap condemnation; a persist failure still
                // leaves the volatile flag set, so retrying is safe.
                let _ = self.condemn_subheap(sub);
                (attributed, true)
            }
            FaultUnit::SubUser(sub) if sub < self.layout.num_subheaps() => {
                if !self.sub_usable(sub) {
                    // A racing condemnation (or an uncreated sub-heap):
                    // nothing to withdraw, and routing already skips it —
                    // retrying on healthy capacity is safe.
                    return (attributed, true);
                }
                // Data poison: block-granularity quarantine. Retry only
                // if something was actually withdrawn — otherwise the
                // poison sits under a live allocation and retrying the
                // same operation would loop on the same line.
                match self.quarantine_poisoned_blocks_on(sub) {
                    Ok((blocks, _)) => (attributed, blocks > 0),
                    Err(_) => {
                        let _ = self.condemn_subheap(sub);
                        (attributed, true)
                    }
                }
            }
            FaultUnit::HugeMeta => {
                // The poison in the extent table is itself the persistent
                // record: every future load re-quarantines from the scrub
                // list, exactly like load-time recovery does.
                self.huge_quarantined.store(true, Ordering::Release);
                (attributed, false)
            }
            FaultUnit::HugeData => match self.quarantine_poisoned_extents() {
                Ok((extents, _)) => (attributed, extents > 0),
                Err(_) => {
                    self.huge_quarantined.store(true, Ordering::Release);
                    (attributed, false)
                }
            },
            _ => (attributed, false),
        }
    }

    /// The heap's current health: quarantine census, live media-error
    /// counters, and scrub progress. Cheap (atomic loads plus the
    /// device's poison-line count); safe to poll from a serving loop.
    pub fn health(&self) -> HeapHealth {
        let c = &self.health;
        HeapHealth {
            quarantined_subheaps: self.quarantined_subheaps().len() as u32,
            huge_region_quarantined: self.huge_quarantined.load(Ordering::Acquire),
            poisoned_lines: self.dev.poisoned_lines(),
            media_errors_during_alloc: c.media_errors_alloc.load(Ordering::Relaxed),
            media_errors_during_free: c.media_errors_free.load(Ordering::Relaxed),
            media_errors_during_tx: c.media_errors_tx.load(Ordering::Relaxed),
            media_errors_during_scrub: c.media_errors_scrub.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            subheaps_condemned_live: c.subheaps_condemned.load(Ordering::Relaxed),
            blocks_quarantined_live: c.blocks_quarantined.load(Ordering::Relaxed),
            extents_quarantined_live: c.extents_quarantined.load(Ordering::Relaxed),
            cache_blocks_invalidated: c.cache_blocks_invalidated.load(Ordering::Relaxed),
            scrub_steps: c.scrub_steps.load(Ordering::Relaxed),
            scrub_passes: c.scrub_passes.load(Ordering::Relaxed),
            maint_steps: c.maint_steps.load(Ordering::Relaxed),
            maint_passes: c.maint_passes.load(Ordering::Relaxed),
            maint_merges: c.maint_merges.load(Ordering::Relaxed),
            maint_table_levels_shrunk: c.maint_levels_shrunk.load(Ordering::Relaxed),
            maint_blocks_trimmed: c.maint_blocks_trimmed.load(Ordering::Relaxed),
        }
    }

    /// One budgeted scrubber increment: examines up to `budget` units
    /// (each unit is one sub-heap, or the huge region) starting at the
    /// persistent-within-the-session cursor, checks their free lists and
    /// extent table against the device's poison list, and promotes any
    /// discovered damage to quarantine at the usual granularity. A full
    /// cycle over every unit counts one *pass*.
    ///
    /// Budgeted and incremental on purpose (the same step/budget shape
    /// the roadmap wants for incremental defrag): drive it from a
    /// `platform` thread concurrently with the serving loop, or call it
    /// inline between requests.
    ///
    /// # Errors
    ///
    /// Device errors other than media faults (those are absorbed into
    /// quarantine and reported in the step).
    pub fn scrub_step(&self, budget: usize) -> Result<ScrubStep> {
        let n = self.layout.num_subheaps() as u64;
        let units = n + u64::from(self.layout.huge_data_size() > 0);
        let mut step = ScrubStep::default();
        let poison = self.dev.scrub();
        for _ in 0..budget.clamp(1, units as usize) {
            let raw = self.health.scrub_cursor.fetch_add(1, Ordering::Relaxed);
            let unit = raw % units;
            if (raw + 1).is_multiple_of(units) {
                self.health.scrub_passes.fetch_add(1, Ordering::Relaxed);
                step.passes_completed += 1;
            }
            step.units_examined += 1;
            if poison.is_empty() {
                continue;
            }
            if unit == n {
                self.scrub_huge_unit(&poison, &mut step);
            } else {
                self.scrub_sub_unit(unit as u16, &poison, &mut step);
            }
        }
        self.health.scrub_steps.fetch_add(1, Ordering::Relaxed);
        Ok(step)
    }

    fn scrub_sub_unit(&self, sub: u16, poison: &[pmem::PoisonRange], step: &mut ScrubStep) {
        if !self.sub_usable(sub) {
            return;
        }
        let meta_base = self.layout.meta_base(sub);
        if quarantine::overlaps_any(poison, meta_base, self.layout.meta_size) {
            // Metadata poison found before any user thread tripped on it.
            self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
            if self.condemn_subheap(sub).is_ok() {
                step.subheaps_condemned += 1;
            }
            return;
        }
        if !quarantine::overlaps_any(poison, self.layout.user_base(sub), self.layout.user_size) {
            return;
        }
        match self.quarantine_poisoned_blocks_on(sub) {
            Ok((blocks, bytes)) => {
                if blocks > 0 {
                    self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
                }
                step.blocks_quarantined += blocks;
                step.bytes_quarantined += bytes;
            }
            Err(_) => {
                // The walk itself hit damage: escalate to condemnation.
                self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
                if self.condemn_subheap(sub).is_ok() {
                    step.subheaps_condemned += 1;
                }
            }
        }
    }

    fn scrub_huge_unit(&self, poison: &[pmem::PoisonRange], step: &mut ScrubStep) {
        if self.layout.huge_data_size() == 0 || self.huge_quarantined.load(Ordering::Acquire) {
            return;
        }
        if quarantine::overlaps_any(poison, self.layout.huge_meta_base(), self.layout.huge_meta_size()) {
            self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
            self.huge_quarantined.store(true, Ordering::Release);
            step.huge_region_quarantined = true;
            return;
        }
        let any_band_hit =
            self.layout.huge_bands().iter().any(|b| quarantine::overlaps_any(poison, b.phys, b.len));
        if !any_band_hit {
            return;
        }
        match self.quarantine_poisoned_extents() {
            Ok((extents, bytes)) => {
                if extents > 0 {
                    self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
                }
                step.extents_quarantined += extents;
                step.bytes_quarantined += bytes;
            }
            Err(_) => {
                self.health.media_errors_scrub.fetch_add(1, Ordering::Relaxed);
                self.huge_quarantined.store(true, Ordering::Release);
                step.huge_region_quarantined = true;
            }
        }
    }

    /// Runs the scrubber until `stop` is set: the background-thread
    /// driver. Spawn it on a [`platform::thread`] scope next to the
    /// serving threads:
    ///
    /// ```ignore
    /// let stop = AtomicBool::new(false);
    /// platform::thread::scope(|s| {
    ///     s.spawn(|| heap.scrub_until(&stop, 1));
    ///     // ... serving threads ...
    ///     stop.store(true, Ordering::Release);
    /// });
    /// ```
    ///
    /// Returns the accumulated step tallies.
    ///
    /// # Errors
    ///
    /// As for [`scrub_step`](Self::scrub_step).
    pub fn scrub_until(&self, stop: &AtomicBool, budget: usize) -> Result<ScrubStep> {
        let mut total = ScrubStep::default();
        while !stop.load(Ordering::Acquire) {
            total.absorb(&self.scrub_step(budget)?);
            std::thread::yield_now();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_units_partition_the_device() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        assert_eq!(fault_unit(&layout, 0), FaultUnit::Superblock);
        assert_eq!(fault_unit(&layout, layout.meta_base(0)), FaultUnit::SubMeta(0));
        assert_eq!(fault_unit(&layout, layout.meta_base(3) + 0x100), FaultUnit::SubMeta(3));
        assert_eq!(fault_unit(&layout, layout.huge_meta_base()), FaultUnit::HugeMeta);
        assert_eq!(fault_unit(&layout, layout.user_base(0)), FaultUnit::SubUser(0));
        assert_eq!(fault_unit(&layout, layout.user_base(2) + 64), FaultUnit::SubUser(2));
        let huge_base = layout.huge_phys_of(0, 1).unwrap();
        assert_eq!(fault_unit(&layout, huge_base), FaultUnit::HugeData);
        assert_eq!(fault_unit(&layout, huge_base + layout.huge_data_size()), FaultUnit::Unknown);
    }

    #[test]
    fn fault_units_without_a_huge_region() {
        let layout = HeapLayout::compute(8 << 20, 1).unwrap();
        assert_eq!(layout.huge_data_size(), 0);
        assert_eq!(fault_unit(&layout, layout.meta_base(0)), FaultUnit::SubMeta(0));
        assert_eq!(fault_unit(&layout, layout.user_base(0)), FaultUnit::SubUser(0));
        assert_eq!(fault_unit(&layout, layout.capacity()), FaultUnit::Unknown);
    }
}
