//! The 16-byte persistent pointer.
//!
//! A raw 8-byte pointer (or device offset) is meaningless across restarts:
//! the pool may be mapped elsewhere. Poseidon's persistent pointer (§4.6)
//! therefore stores an **8-byte heap id**, a **2-byte sub-heap id**, and a
//! **6-byte offset** within that sub-heap's user region, and is converted
//! to/from a raw location on use.

use pmem::pod_struct;

/// Maximum offset representable in the 6-byte offset field.
pub const MAX_OFFSET: u64 = (1 << 48) - 1;

pod_struct! {
    /// A Poseidon persistent pointer: heap id, sub-heap id, and sub-heap
    /// offset packed into 16 bytes (§4.6).
    ///
    /// The all-zero value is *null* only if `heap_id == 0`; heap ids are
    /// drawn non-zero at heap creation, so [`NvmPtr::NULL`] never aliases a
    /// real pointer.
    pub struct NvmPtr {
        /// Random, non-zero id of the owning heap.
        pub heap_id: u64,
        /// `(subheap << 48) | offset` — 2-byte sub-heap id, 6-byte offset.
        pub packed: u64,
    }
}

impl NvmPtr {
    /// The null persistent pointer.
    pub const NULL: NvmPtr = NvmPtr { heap_id: 0, packed: 0 };

    /// Builds a pointer from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`MAX_OFFSET`] (6 bytes).
    pub fn new(heap_id: u64, subheap: u16, offset: u64) -> NvmPtr {
        assert!(offset <= MAX_OFFSET, "offset {offset:#x} exceeds the 6-byte pointer field");
        NvmPtr { heap_id, packed: ((subheap as u64) << 48) | offset }
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.heap_id == 0
    }

    /// The sub-heap id.
    #[inline]
    pub fn subheap(&self) -> u16 {
        (self.packed >> 48) as u16
    }

    /// The offset within the sub-heap's user region.
    #[inline]
    pub fn offset(&self) -> u64 {
        self.packed & MAX_OFFSET
    }
}

impl std::fmt::Display for NvmPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            f.write_str("nvmptr(null)")
        } else {
            write!(f, "nvmptr({:#x}:{}:{:#x})", self.heap_id, self.subheap(), self.offset())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::Pod;

    #[test]
    fn parts_roundtrip() {
        let p = NvmPtr::new(0xFEED, 7, 0x1234_5678_9ABC);
        assert_eq!(p.heap_id, 0xFEED);
        assert_eq!(p.subheap(), 7);
        assert_eq!(p.offset(), 0x1234_5678_9ABC);
        assert!(!p.is_null());
    }

    #[test]
    fn is_16_bytes_and_pod() {
        assert_eq!(std::mem::size_of::<NvmPtr>(), 16);
        let p = NvmPtr::new(1, 2, 3);
        assert_eq!(NvmPtr::from_bytes(p.as_bytes()), p);
    }

    #[test]
    fn null_is_all_zero() {
        assert!(NvmPtr::NULL.is_null());
        assert!(NvmPtr::NULL.as_bytes().iter().all(|&b| b == 0));
        assert_eq!(NvmPtr::default(), NvmPtr::NULL);
    }

    #[test]
    fn max_offset_fits() {
        let p = NvmPtr::new(1, u16::MAX, MAX_OFFSET);
        assert_eq!(p.subheap(), u16::MAX);
        assert_eq!(p.offset(), MAX_OFFSET);
    }

    #[test]
    #[should_panic(expected = "exceeds the 6-byte pointer field")]
    fn oversized_offset_panics() {
        let _ = NvmPtr::new(1, 0, MAX_OFFSET + 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NvmPtr::NULL.to_string(), "nvmptr(null)");
        assert!(NvmPtr::new(0xAB, 3, 0x40).to_string().contains(":3:"));
    }
}
