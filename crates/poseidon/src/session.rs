//! Operation sessions: validate once per operation, not once per word.
//!
//! Every allocator operation used to thread a bare [`SubCtx`] through the
//! sub-heap modules, and each of the ~30 `read_pod`/`write_pod` call
//! sites independently re-ran the device's full validation sequence
//! (bounds, MPK page walk, poison lookup) and bumped shared stats
//! counters — all *inside* the sub-heap lock. An [`OpSession`] hoists
//! that to operation granularity: it owns everything one operation needs
//! —
//!
//! * the sub-heap context (geometry),
//! * a [`MetaView`] over the sub-heap's metadata region, validated
//!   **once** at construction ([`pmem::PmemDevice::map_meta`]),
//! * the staged-write overlay of the operation's open [`UndoScope`]
//!   (reads through the session observe the operation's own
//!   not-yet-issued stores — see `undo`'s module docs),
//! * and, when built by the heap's entry points, the sub-heap lock guard
//!   and the PKRU write guard.
//!
//! All metadata word traffic in `buddy`/`hashtable`/`microlog`/`defrag`/
//! `subheap` flows through the view, whose accessors cost a local bounds
//! check (plus a relaxed poison probe on reads) instead of the full
//! per-call sequence. Crash semantics are unchanged: the view still
//! captures every pre-image into the crash model and counts every
//! mutation against armed crash/poison injection (see `pmem::view`).
//!
//! [`UndoScope`] is the session-local undo-log writer: a
//! [`LogCore`](crate::undo) driving the session's [`MetaView`]. It is
//! byte-*identical* with the device-backed [`UndoSession`] — one shared
//! implementation, not a transcribed twin — so an operation interrupted
//! by a crash is recovered by the ordinary device-backed
//! [`undo::replay`] on the next load. Dropping a scope without
//! committing rolls back immediately, so an early `?` return leaves the
//! heap untouched.
//!
//! [`UndoSession`]: crate::undo::UndoSession

use std::cell::RefCell;

use mpk::PkruGuard;
use pmem::contention::TrackedGuard;
use pmem::{AccessKind, MetaView};

use crate::error::Result;
use crate::persist::{HashEntry, SubCtx, SubheapHeader};
use crate::undo::{self, LogCore, StagedWrites};

/// One allocator operation's session on one sub-heap. See the
/// [module docs](self).
#[derive(Debug)]
pub(crate) struct OpSession<'a> {
    /// The sub-heap context (device, geometry, index). Rare non-word
    /// device operations (hole punching, NUMA placement, poison queries)
    /// go through `ctx.dev` directly and re-validate per call.
    pub(crate) ctx: SubCtx<'a>,
    view: MetaView<'a>,
    /// Target writes staged by the open [`UndoScope`] (empty outside a
    /// scope). Held here, not in the scope, so the session's read
    /// accessors can patch them over view reads.
    staged: RefCell<StagedWrites>,
    // Field order is drop order: the view flushes its stats deltas while
    // the sub-heap lock is still held, then the lock is released, then
    // write access to metadata is revoked.
    _lock: Option<TrackedGuard<'a, ()>>,
    _pkru: Option<PkruGuard<'a>>,
}

impl<'a> OpSession<'a> {
    fn map(
        ctx: SubCtx<'a>,
        kind: AccessKind,
        lock: Option<TrackedGuard<'a, ()>>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<OpSession<'a>> {
        let view = ctx.dev.map_meta(ctx.meta_base(), ctx.layout.meta_size, kind)?;
        Ok(OpSession { ctx, view, staged: RefCell::new(Vec::new()), _lock: lock, _pkru: pkru })
    }

    /// A write session owning the sub-heap lock guard and (when metadata
    /// protection is on) the PKRU write guard — the heap entry points'
    /// constructor.
    pub fn guarded(
        ctx: SubCtx<'a>,
        lock: TrackedGuard<'a, ()>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Write, Some(lock), pkru)
    }

    /// A write session without guards, for callers that already hold them
    /// (sub-heap creation, recovery) and for module tests.
    pub fn unguarded(ctx: SubCtx<'a>) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Write, None, None)
    }

    /// A read-only session holding the sub-heap lock but no PKRU grant —
    /// metadata pages are readable under their resting `ReadOnly` rights,
    /// so lookups and audits never pay a `wrpkru` pair.
    pub fn read_only(ctx: SubCtx<'a>, lock: TrackedGuard<'a, ()>) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Read, Some(lock), None)
    }

    /// The metadata view (accessors take absolute device offsets).
    ///
    /// Direct `view().read…` calls bypass the staged-write overlay; use
    /// the session's own read accessors for anything an open
    /// [`UndoScope`] may have written.
    pub fn view(&self) -> &MetaView<'a> {
        &self.view
    }

    /// Reads `buf.len()` bytes at `offset` through the view, patched
    /// with the open scope's staged writes.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.view.read(offset, buf)?;
        undo::overlay_patch(&self.staged.borrow(), offset, buf);
        Ok(())
    }

    /// Reads a [`pmem::Pod`] value through the view (overlay-patched).
    pub fn read_pod<T: pmem::Pod>(&self, offset: u64) -> Result<T> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    /// Reads the block record at device offset `entry_off`.
    pub fn entry(&self, entry_off: u64) -> Result<HashEntry> {
        self.read_pod(entry_off)
    }

    /// Reads the number of active hash-table levels.
    pub fn active_levels(&self) -> Result<u64> {
        self.read_pod(self.ctx.active_levels_off())
    }

    /// Reads this sub-heap's header.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn header(&self) -> Result<SubheapHeader> {
        self.read_pod(self.ctx.meta_base())
    }

    /// Opens an undo scope on this sub-heap's log area.
    ///
    /// # Errors
    ///
    /// As for [`UndoScope::begin`].
    pub fn undo(&self) -> Result<UndoScope<'_, 'a>> {
        UndoScope::begin(self)
    }
}

/// An open undo scope writing through its session's view; the in-session
/// equivalent of [`crate::undo::UndoSession`], sharing its
/// [`LogCore`](crate::undo) implementation (identical on-device format
/// and two-fence commit). Finish with [`commit`](Self::commit) or
/// [`abort`](Self::abort); dropping without committing rolls back.
#[derive(Debug)]
pub(crate) struct UndoScope<'s, 'a> {
    view: &'s MetaView<'a>,
    staged: &'s RefCell<StagedWrites>,
    core: LogCore,
}

impl<'s, 'a> UndoScope<'s, 'a> {
    /// Opens a scope on `op`'s sub-heap undo area. A guarded session
    /// provably owns the sub-heap lock, so a live log can only be a
    /// rollback that died mid-flight (e.g. interrupted by a transient
    /// media fault) and is re-driven here; an unguarded session cannot
    /// rule out a concurrent writer and stays strict.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`](crate::PoseidonError::Corrupted) if
    /// live entries from a crashed operation are present and cannot be
    /// re-driven (recovery must run first), or a device error.
    pub fn begin(op: &'s OpSession<'a>) -> Result<UndoScope<'s, 'a>> {
        Self::begin_raw(&op.view, &op.staged, op.ctx.undo_area(), op._lock.is_some())
    }

    /// Opens a scope on an arbitrary undo `area` through `view`, with
    /// staged target writes accumulating in `staged` — the constructor
    /// shared by sub-heap sessions and the huge-region session
    /// (`hugeregion::HugeOp`), which carries its own view and overlay.
    /// `holds_lock` asserts that the caller owns the area's lock, which
    /// permits re-driving a rollback that died mid-flight.
    ///
    /// # Errors
    ///
    /// As for [`begin`](Self::begin).
    pub fn begin_raw(
        view: &'s MetaView<'a>,
        staged: &'s RefCell<StagedWrites>,
        area: crate::undo::UndoArea,
        holds_lock: bool,
    ) -> Result<UndoScope<'s, 'a>> {
        debug_assert!(staged.borrow().is_empty(), "one undo scope per session at a time");
        let core =
            if holds_lock { LogCore::begin_recovering(view, area)? } else { LogCore::begin(view, area)? };
        Ok(UndoScope { view, staged, core })
    }

    /// Logs the current (overlay-visible) content of
    /// `[target, target + new.len())`, then stages `new` there. The
    /// store is issued and becomes durable at [`commit`](Self::commit);
    /// until then the session's read accessors observe it through the
    /// overlay.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`](crate::PoseidonError::Corrupted) on
    /// log overflow, or a device error.
    pub fn log_and_write(&mut self, target: u64, new: &[u8]) -> Result<()> {
        let mut staged = self.staged.borrow_mut();
        self.core.log_and_write(self.view, &mut staged, target, new)
    }

    /// Whether one more [`log_and_write`](Self::log_and_write) of `len`
    /// bytes fits in the log area. Batch operations (cache refill/drain)
    /// size their batches with this so they commit what fits instead of
    /// dying on `"undo log overflow"`.
    pub fn has_room_for(&self, len: u64) -> bool {
        self.core.has_room_for(len)
    }

    /// [`log_and_write`](Self::log_and_write) of a [`pmem::Pod`] value.
    ///
    /// # Errors
    ///
    /// As for [`log_and_write`](Self::log_and_write).
    pub fn log_and_write_pod<T: pmem::Pod>(&mut self, target: u64, value: &T) -> Result<()> {
        self.log_and_write(target, value.as_bytes())
    }

    /// The two-fence batched commit (see `undo`'s module docs): fence
    /// the log entries, issue + fence the staged stores (lines deduped),
    /// bump the generation. Zero fences if the scope staged nothing.
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn commit(mut self) -> Result<()> {
        let mut staged = self.staged.borrow_mut();
        self.core.commit(self.view, &mut staged)
    }

    /// Rolls the scope back: discards staged stores, restores every
    /// logged range (newest first) and invalidates the log.
    ///
    /// # Errors
    ///
    /// Device errors only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn abort(mut self) -> Result<()> {
        let mut staged = self.staged.borrow_mut();
        self.core.abort(self.view, &mut staged)
    }
}

impl Drop for UndoScope<'_, '_> {
    fn drop(&mut self) {
        // A dropped-without-commit scope (e.g. an early `?` return) must
        // not leave half-applied metadata behind: roll back best-effort.
        // If the device has crashed, rollback fails harmlessly here and
        // recovery replays the log instead.
        let mut staged = self.staged.borrow_mut();
        self.core.drop_rollback(self.view, &mut staged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PoseidonError;
    use crate::layout::HeapLayout;
    use crate::undo::UndoSession;
    use pmem::{CrashMode, DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        (dev, layout)
    }

    fn target_off(layout: &HeapLayout) -> u64 {
        // An arbitrary metadata word inside sub-heap 0's table area.
        layout.level_base(0, 0) + 256
    }

    #[test]
    fn one_validation_per_session_many_accesses() {
        let (dev, layout) = setup();
        let before = dev.stats();
        {
            let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            for i in 0..16u64 {
                scope.log_and_write_pod(target_off(&layout) + i * 8, &i).unwrap();
            }
            scope.commit().unwrap();
        }
        let after = dev.stats();
        // One map_meta validation; every logged word went through the view.
        assert_eq!(after.validations - before.validations, 1);
        assert_eq!(after.meta_maps - before.meta_maps, 1);
        assert!(after.write_ops - before.write_ops >= 32, "16 entries + 16 targets at least");
    }

    #[test]
    fn session_reads_observe_the_open_scope() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        let op = OpSession::unguarded(ctx).unwrap();
        let mut scope = op.undo().unwrap();
        scope.log_and_write_pod(target, &0x5Au64).unwrap();
        // Staged: raw view misses it, the session accessor sees it.
        assert_eq!(op.view().read_pod::<u64>(target).unwrap(), 0);
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 0x5A);
        scope.commit().unwrap();
        assert_eq!(op.view().read_pod::<u64>(target).unwrap(), 0x5A);
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 0x5A);
    }

    #[test]
    fn scope_commit_is_durable_and_replay_is_noop() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        {
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &0xAAu64).unwrap();
            scope.commit().unwrap();
        }
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 0xAA);
        assert!(!undo::replay(&dev, ctx.undo_area()).unwrap());
    }

    #[test]
    fn empty_scope_commit_is_barrier_free() {
        // Satellite regression: read-only operations must not fence.
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let before = dev.stats();
        {
            let op = OpSession::unguarded(ctx).unwrap();
            op.undo().unwrap().commit().unwrap();
        }
        let after = dev.stats();
        assert_eq!(after.sfence_count, before.sfence_count, "empty scope commit fenced");
        assert_eq!(after.clwb_count, before.clwb_count, "empty scope commit flushed");
    }

    #[test]
    fn crashed_scope_is_replayed_by_device_backed_recovery() {
        // The interoperability contract: entries written through the view
        // must be read back by the *device-backed* replay after a crash.
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        {
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &2u64).unwrap();
            // Crash mid-commit, right after fence #1 (entry write +
            // entry-line clwb + fence): the entry is durable through the
            // view, the target store was never issued.
            dev.arm_crash_after(3);
            assert!(scope.commit().is_err());
        }
        dev.simulate_crash(CrashMode::Strict, 3);
        assert!(undo::replay(&dev, ctx.undo_area()).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn device_backed_session_blocks_scope_and_vice_versa() {
        // Both writers share one log area and generation: a crashed one
        // must block the other until recovery, regardless of which side
        // wrote the entries.
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        let mut s = UndoSession::begin(&dev, ctx.undo_area()).unwrap();
        s.log_and_write_pod(target, &7u64).unwrap();
        std::mem::forget(s);
        let op = OpSession::unguarded(ctx).unwrap();
        assert!(matches!(op.undo(), Err(PoseidonError::Corrupted(_))));
        drop(op);
        undo::replay(&dev, ctx.undo_area()).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        op.undo().unwrap().commit().unwrap();
    }

    #[test]
    fn drop_without_commit_rolls_back_through_the_view() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &7u64).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        {
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &8u64).unwrap();
            // dropped here without commit
        }
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 7);
        op.undo().unwrap().commit().unwrap();
    }

    #[test]
    fn abort_restores_in_reverse_order() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &1u64).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        let mut scope = op.undo().unwrap();
        scope.log_and_write_pod(target, &2u64).unwrap();
        scope.log_and_write_pod(target, &3u64).unwrap();
        scope.abort().unwrap();
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn scope_overflow_is_detected() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let op = OpSession::unguarded(ctx).unwrap();
        let mut scope = op.undo().unwrap();
        let big = vec![0u8; 4096];
        let mut wrote = 0u64;
        let r = loop {
            match scope.log_and_write(target_off(&layout), &big) {
                Ok(()) => wrote += 1,
                Err(e) => break e,
            }
        };
        assert!(wrote > 0);
        assert!(matches!(r, PoseidonError::Corrupted("undo log overflow")));
        scope.abort().unwrap();
    }
}
