//! Operation sessions: validate once per operation, not once per word.
//!
//! Every allocator operation used to thread a bare [`SubCtx`] through the
//! sub-heap modules, and each of the ~30 `read_pod`/`write_pod` call
//! sites independently re-ran the device's full validation sequence
//! (bounds, MPK page walk, poison lookup) and bumped shared stats
//! counters — all *inside* the sub-heap lock. An [`OpSession`] hoists
//! that to operation granularity: it owns everything one operation needs
//! —
//!
//! * the sub-heap context (geometry),
//! * a [`MetaView`] over the sub-heap's metadata region, validated
//!   **once** at construction ([`pmem::PmemDevice::map_meta`]),
//! * and, when built by the heap's entry points, the sub-heap lock guard
//!   and the PKRU write guard.
//!
//! All metadata word traffic in `buddy`/`hashtable`/`microlog`/`defrag`/
//! `subheap` flows through the view, whose accessors cost a local bounds
//! check (plus a relaxed poison probe on reads) instead of the full
//! per-call sequence. Crash semantics are unchanged: the view still
//! captures every pre-image into the crash model and counts every
//! mutation against armed crash/poison injection (see `pmem::view`).
//!
//! [`UndoScope`] is the session-local undo-log writer. It is
//! byte-compatible with the device-backed [`UndoSession`] — same entry
//! layout, generation discipline and checksum (shared via
//! [`undo::checksum`]) — so an operation interrupted by a crash is
//! recovered by the ordinary device-backed [`undo::replay`] on the next
//! load. Dropping a scope without committing rolls back immediately, so
//! an early `?` return leaves the heap untouched.
//!
//! [`UndoSession`]: crate::undo::UndoSession

use mpk::PkruGuard;
use pmem::contention::TrackedGuard;
use pmem::{AccessKind, MetaView};

use crate::error::{PoseidonError, Result};
use crate::persist::{HashEntry, SubCtx, SubheapHeader};
use crate::undo::{self, UndoArea};

/// One allocator operation's session on one sub-heap. See the
/// [module docs](self).
#[derive(Debug)]
pub(crate) struct OpSession<'a> {
    /// The sub-heap context (device, geometry, index). Rare non-word
    /// device operations (hole punching, NUMA placement, poison queries)
    /// go through `ctx.dev` directly and re-validate per call.
    pub(crate) ctx: SubCtx<'a>,
    view: MetaView<'a>,
    // Field order is drop order: the view flushes its stats deltas while
    // the sub-heap lock is still held, then the lock is released, then
    // write access to metadata is revoked.
    _lock: Option<TrackedGuard<'a, ()>>,
    _pkru: Option<PkruGuard<'a>>,
}

impl<'a> OpSession<'a> {
    fn map(
        ctx: SubCtx<'a>,
        kind: AccessKind,
        lock: Option<TrackedGuard<'a, ()>>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<OpSession<'a>> {
        let view = ctx.dev.map_meta(ctx.meta_base(), ctx.layout.meta_size, kind)?;
        Ok(OpSession { ctx, view, _lock: lock, _pkru: pkru })
    }

    /// A write session owning the sub-heap lock guard and (when metadata
    /// protection is on) the PKRU write guard — the heap entry points'
    /// constructor.
    pub fn guarded(
        ctx: SubCtx<'a>,
        lock: TrackedGuard<'a, ()>,
        pkru: Option<PkruGuard<'a>>,
    ) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Write, Some(lock), pkru)
    }

    /// A write session without guards, for callers that already hold them
    /// (sub-heap creation, recovery) and for module tests.
    pub fn unguarded(ctx: SubCtx<'a>) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Write, None, None)
    }

    /// A read-only session holding the sub-heap lock but no PKRU grant —
    /// metadata pages are readable under their resting `ReadOnly` rights,
    /// so lookups and audits never pay a `wrpkru` pair.
    pub fn read_only(ctx: SubCtx<'a>, lock: TrackedGuard<'a, ()>) -> Result<OpSession<'a>> {
        Self::map(ctx, AccessKind::Read, Some(lock), None)
    }

    /// The metadata view (accessors take absolute device offsets).
    pub fn view(&self) -> &MetaView<'a> {
        &self.view
    }

    /// Reads a [`pmem::Pod`] value through the view.
    pub fn read_pod<T: pmem::Pod>(&self, offset: u64) -> Result<T> {
        Ok(self.view.read_pod(offset)?)
    }

    /// Reads the block record at device offset `entry_off`.
    pub fn entry(&self, entry_off: u64) -> Result<HashEntry> {
        self.read_pod(entry_off)
    }

    /// Reads the number of active hash-table levels.
    pub fn active_levels(&self) -> Result<u64> {
        self.read_pod(self.ctx.active_levels_off())
    }

    /// Reads this sub-heap's header.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn header(&self) -> Result<SubheapHeader> {
        self.read_pod(self.ctx.meta_base())
    }

    /// Opens an undo scope on this sub-heap's log area.
    ///
    /// # Errors
    ///
    /// As for [`UndoScope::begin`].
    pub fn undo(&self) -> Result<UndoScope<'_, 'a>> {
        UndoScope::begin(self)
    }
}

/// An open undo scope writing through its session's view; the in-session
/// equivalent of [`crate::undo::UndoSession`] (identical on-device
/// format). Finish with [`commit`](Self::commit) or
/// [`abort`](Self::abort); dropping without committing rolls back.
#[derive(Debug)]
pub(crate) struct UndoScope<'s, 'a> {
    op: &'s OpSession<'a>,
    area: UndoArea,
    gen: u64,
    tail: u64,
    dirty: Vec<(u64, u64)>,
    finished: bool,
    buffer: Vec<u8>,
}

impl<'s, 'a> UndoScope<'s, 'a> {
    /// Opens a scope on `op`'s sub-heap undo area.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if live entries from a crashed
    /// operation are present (recovery must run first), or a device
    /// error.
    pub fn begin(op: &'s OpSession<'a>) -> Result<UndoScope<'s, 'a>> {
        let area = op.ctx.undo_area();
        let gen: u64 = op.view().read_pod(area.gen_field)?;
        if read_entry(op.view(), area, gen, 0)?.is_some() {
            return Err(PoseidonError::Corrupted("undo log non-empty at operation start"));
        }
        Ok(UndoScope { op, area, gen, tail: 0, dirty: Vec::new(), finished: false, buffer: Vec::new() })
    }

    /// Logs the current content of `[target, target + new.len())`, then
    /// writes `new` there. The new bytes become durable at
    /// [`commit`](Self::commit).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] on log overflow, or a device error.
    pub fn log_and_write(&mut self, target: u64, new: &[u8]) -> Result<()> {
        let len = new.len() as u64;
        let entry_len = undo::ENTRY_HEADER + len.next_multiple_of(8);
        if self.tail + entry_len > self.area.size {
            return Err(PoseidonError::Corrupted("undo log overflow"));
        }
        let header = undo::ENTRY_HEADER as usize;
        let view = self.op.view();
        self.buffer.clear();
        self.buffer.resize(entry_len as usize, 0);
        view.read(target, &mut self.buffer[header..header + new.len()])?;
        let sum = undo::checksum(self.gen, target, len, &self.buffer[header..]);
        self.buffer[0..8].copy_from_slice(&self.gen.to_le_bytes());
        self.buffer[8..16].copy_from_slice(&target.to_le_bytes());
        self.buffer[16..24].copy_from_slice(&len.to_le_bytes());
        self.buffer[24..32].copy_from_slice(&sum.to_le_bytes());
        let entry_off = self.area.base + self.tail;
        view.write(entry_off, &self.buffer)?;
        view.persist(entry_off, entry_len)?;
        self.tail += entry_len;
        // Now the mutation itself (persisted at commit).
        view.write(target, new)?;
        self.dirty.push((target, len));
        Ok(())
    }

    /// [`log_and_write`](Self::log_and_write) of a [`pmem::Pod`] value.
    ///
    /// # Errors
    ///
    /// As for [`log_and_write`](Self::log_and_write).
    pub fn log_and_write_pod<T: pmem::Pod>(&mut self, target: u64, value: &T) -> Result<()> {
        self.log_and_write(target, value.as_bytes())
    }

    /// Persists every range written this scope, then invalidates the log
    /// by bumping the generation — the operation's commit point.
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn commit(mut self) -> Result<()> {
        for &(off, len) in &self.dirty {
            self.op.view().clwb(off, len)?;
        }
        self.op.view().sfence()?;
        if self.tail > 0 {
            bump_generation(self.op.view(), self.area, self.gen)?;
        }
        self.finished = true;
        Ok(())
    }

    /// Rolls the scope back: restores every logged range (newest first)
    /// and invalidates the log.
    ///
    /// # Errors
    ///
    /// Device errors only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        if self.tail > 0 {
            apply_undo(self.op.view(), self.area, self.gen)?;
        }
        Ok(())
    }
}

impl Drop for UndoScope<'_, '_> {
    fn drop(&mut self) {
        // A dropped-without-commit scope (e.g. an early `?` return) must
        // not leave half-applied metadata behind: roll back best-effort.
        // If the device has crashed, rollback fails harmlessly here and
        // recovery replays the log instead.
        if !self.finished && self.tail != 0 {
            let _ = apply_undo(self.op.view(), self.area, self.gen);
        }
    }
}

/// View-routed twin of `undo::read_entry` (same validation, same
/// accept/reject decisions — both read the same on-device format).
fn read_entry(view: &MetaView<'_>, area: UndoArea, gen: u64, pos: u64) -> Result<Option<undo::DecodedEntry>> {
    if pos + undo::ENTRY_HEADER > area.size {
        return Ok(None);
    }
    let entry_gen: u64 = view.read_pod(area.base + pos)?;
    if entry_gen != gen {
        return Ok(None);
    }
    let target: u64 = view.read_pod(area.base + pos + 8)?;
    let len: u64 = view.read_pod(area.base + pos + 16)?;
    let stored_sum: u64 = view.read_pod(area.base + pos + 24)?;
    if len > area.size || pos + undo::ENTRY_HEADER + len.next_multiple_of(8) > area.size {
        return Ok(None); // torn header
    }
    let mut old = vec![0u8; len.next_multiple_of(8) as usize];
    view.read(area.base + pos + undo::ENTRY_HEADER, &mut old)?;
    if undo::checksum(gen, target, len, &old) != stored_sum {
        return Ok(None); // torn entry
    }
    old.truncate(len as usize);
    Ok(Some((target, len, old, undo::ENTRY_HEADER + len.next_multiple_of(8))))
}

fn apply_undo(view: &MetaView<'_>, area: UndoArea, gen: u64) -> Result<()> {
    let mut entries = Vec::new();
    let mut pos = 0u64;
    while let Some((target, len, old, entry_len)) = read_entry(view, area, gen, pos)? {
        entries.push((target, len, old));
        pos += entry_len;
    }
    for (target, len, old) in entries.iter().rev() {
        view.write(*target, old)?;
        view.clwb(*target, *len)?;
    }
    view.sfence()?;
    bump_generation(view, area, gen)?;
    Ok(())
}

fn bump_generation(view: &MetaView<'_>, area: UndoArea, gen: u64) -> Result<()> {
    view.write_pod(area.gen_field, &(gen + 1))?;
    view.persist(area.gen_field, 8)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::undo::UndoSession;
    use pmem::{CrashMode, DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        (dev, layout)
    }

    fn target_off(layout: &HeapLayout) -> u64 {
        // An arbitrary metadata word inside sub-heap 0's table area.
        layout.level_base(0, 0) + 256
    }

    #[test]
    fn one_validation_per_session_many_accesses() {
        let (dev, layout) = setup();
        let before = dev.stats();
        {
            let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            for i in 0..16u64 {
                scope.log_and_write_pod(target_off(&layout) + i * 8, &i).unwrap();
            }
            scope.commit().unwrap();
        }
        let after = dev.stats();
        // One map_meta validation; every logged word went through the view.
        assert_eq!(after.validations - before.validations, 1);
        assert_eq!(after.meta_maps - before.meta_maps, 1);
        assert!(after.write_ops - before.write_ops >= 32, "16 entries + 16 targets at least");
    }

    #[test]
    fn scope_commit_is_durable_and_replay_is_noop() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        {
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &0xAAu64).unwrap();
            scope.commit().unwrap();
        }
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 0xAA);
        assert!(!undo::replay(&dev, ctx.undo_area()).unwrap());
    }

    #[test]
    fn crashed_scope_is_replayed_by_device_backed_recovery() {
        // The interoperability contract: entries written through the view
        // must be read back by the *device-backed* replay after a crash.
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        {
            let op = OpSession::unguarded(ctx).unwrap();
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &2u64).unwrap();
            std::mem::forget(scope);
        }
        dev.simulate_crash(CrashMode::Strict, 3);
        assert!(undo::replay(&dev, ctx.undo_area()).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn device_backed_session_blocks_scope_and_vice_versa() {
        // Both writers share one log area and generation: a crashed one
        // must block the other until recovery, regardless of which side
        // wrote the entries.
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        let mut s = UndoSession::begin(&dev, ctx.undo_area()).unwrap();
        s.log_and_write_pod(target, &7u64).unwrap();
        std::mem::forget(s);
        let op = OpSession::unguarded(ctx).unwrap();
        assert!(matches!(op.undo(), Err(PoseidonError::Corrupted(_))));
        drop(op);
        undo::replay(&dev, ctx.undo_area()).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        op.undo().unwrap().commit().unwrap();
    }

    #[test]
    fn drop_without_commit_rolls_back_through_the_view() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &7u64).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        {
            let mut scope = op.undo().unwrap();
            scope.log_and_write_pod(target, &8u64).unwrap();
            // dropped here without commit
        }
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 7);
        op.undo().unwrap().commit().unwrap();
    }

    #[test]
    fn abort_restores_in_reverse_order() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let target = target_off(&layout);
        dev.write_pod(target, &1u64).unwrap();
        let op = OpSession::unguarded(ctx).unwrap();
        let mut scope = op.undo().unwrap();
        scope.log_and_write_pod(target, &2u64).unwrap();
        scope.log_and_write_pod(target, &3u64).unwrap();
        scope.abort().unwrap();
        assert_eq!(op.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn scope_overflow_is_detected() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let op = OpSession::unguarded(ctx).unwrap();
        let mut scope = op.undo().unwrap();
        let big = vec![0u8; 4096];
        let mut wrote = 0u64;
        let r = loop {
            match scope.log_and_write(target_off(&layout), &big) {
                Ok(()) => wrote += 1,
                Err(e) => break e,
            }
        };
        assert!(wrote > 0);
        assert!(matches!(r, PoseidonError::Corrupted("undo log overflow")));
        scope.abort().unwrap();
    }
}
