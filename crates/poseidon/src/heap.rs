//! The public Poseidon heap API (§4.6, Figure 5).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpk::{AccessRights, PkruGuard, ProtectionKey};
use pmem::contention::{LockProfile, TrackedMutex};
use pmem::{numa, PmemDevice};

use crate::error::{OpKind, PoseidonError, Result};
use crate::frontend::{CacheConfig, HeapCache};
use crate::hugeregion::{self, HugeAudit, HUGE_SUBHEAP};
use crate::layout::{HeapLayout, Region, MAX_SUBHEAPS};
use crate::nvmptr::NvmPtr;
use crate::persist::{DirEntry, HugeCtx, SubCtx, SUPERBLOCK_MAGIC};
use crate::recovery::{self, RecoveryReport};
use crate::selfheal::HealthCounters;
use crate::session::OpSession;
use crate::subheap::{self, SubheapAudit};
use crate::superblock;

/// Configuration for creating or opening a heap.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapConfig {
    /// Number of per-CPU sub-heaps. Defaults to the device topology's CPU
    /// count. Ignored when opening an existing heap (geometry is stored in
    /// the superblock).
    pub num_subheaps: Option<u16>,
    /// Protect metadata with MPK (default `true`). Turning this off is the
    /// "no protection" ablation: no key is allocated, no `wrpkru` pair per
    /// operation, and metadata pages stay writable to everyone.
    pub unprotected: bool,
    /// The transient caching layer in front of the persistent buddy
    /// (default enabled — see [`CacheConfig`]). Disabling it is the
    /// "uncached" ablation: every operation takes the undo-logged slow
    /// path.
    pub cache: CacheConfig,
}

impl HeapConfig {
    /// Default configuration.
    pub fn new() -> HeapConfig {
        HeapConfig::default()
    }

    /// Sets the number of sub-heaps.
    pub fn with_subheaps(mut self, n: u16) -> HeapConfig {
        self.num_subheaps = Some(n);
        self
    }

    /// Disables MPK metadata protection (ablation only).
    pub fn without_protection(mut self) -> HeapConfig {
        self.unprotected = true;
        self
    }

    /// Disables the transient caching layer: every allocation and free
    /// takes the undo-logged slow path (ablation, and for tests that pin
    /// slow-path behaviour).
    pub fn without_cache(mut self) -> HeapConfig {
        self.cache.enabled = false;
        self
    }

    /// Replaces the cache configuration wholesale.
    pub fn with_cache(mut self, cache: CacheConfig) -> HeapConfig {
        self.cache = cache;
        self
    }
}

pub(crate) struct SubSlot {
    pub(crate) lock: TrackedMutex<()>,
    pub(crate) created: AtomicBool,
    /// Set by load-time recovery when the sub-heap's metadata was hit by
    /// an uncorrectable media error: every operation on it is refused
    /// (typed [`PoseidonError::SubheapQuarantined`]) until
    /// `pfsck --repair` rebuilds it. Volatile — re-evaluated on every
    /// load from the device's scrub list.
    pub(crate) quarantined: AtomicBool,
    /// Bitmap of micro-log slots claimed by open transactions.
    pub(crate) tx_slots: std::sync::atomic::AtomicU32,
}

/// What one successful [`PoseidonHeap::grow`] call changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowReport {
    /// Pool capacity before the grow.
    pub old_capacity: u64,
    /// Pool capacity after the grow.
    pub new_capacity: u64,
    /// Index of the layout epoch the grow committed.
    pub epoch: usize,
    /// Sub-heaps materialised by the new epoch.
    pub new_subheaps: u16,
    /// Bytes added to the huge region's logical space.
    pub huge_bytes_added: u64,
}

/// Cumulative operation counters of a heap (volatile; reset on open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapOpStats {
    /// Successful allocations (including transactional ones).
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Frees rejected as invalid or double (§4.7 protection working).
    pub rejected_frees: u64,
    /// Committed transactions.
    pub tx_commits: u64,
    /// Explicitly aborted transactions.
    pub tx_aborts: u64,
    /// Buddy merges performed by explicit defragmentation calls.
    pub defrag_merges: u64,
}

#[derive(Debug, Default)]
pub(crate) struct OpCounters {
    pub(crate) allocs: std::sync::atomic::AtomicU64,
    pub(crate) frees: std::sync::atomic::AtomicU64,
    pub(crate) rejected_frees: std::sync::atomic::AtomicU64,
    pub(crate) tx_commits: std::sync::atomic::AtomicU64,
    pub(crate) tx_aborts: std::sync::atomic::AtomicU64,
    pub(crate) defrag_merges: std::sync::atomic::AtomicU64,
}

/// A Poseidon persistent heap: per-CPU sub-heaps, fully segregated
/// MPK-protected metadata, undo/micro logging, and O(1) block tracking.
///
/// The heap is `Send + Sync`; share it across threads with [`Arc`].
/// Threads should register their logical CPU with
/// [`pmem::numa::set_current_cpu`] so allocations stay CPU- and NUMA-local
/// (unregistered threads use CPU 0).
///
/// # Examples
///
/// ```
/// use poseidon::{HeapConfig, PoseidonHeap};
/// use pmem::{DeviceConfig, PmemDevice};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), poseidon::PoseidonError> {
/// let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
/// let heap = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2))?;
///
/// let ptr = heap.alloc(256)?;
/// let raw = heap.raw_offset(ptr)?;
/// heap.device().write(raw, b"hello persistent world")?;
/// heap.device().persist(raw, 22)?;
/// heap.set_root(ptr)?;
/// heap.free(ptr)?;
/// # Ok(())
/// # }
/// ```
pub struct PoseidonHeap {
    pub(crate) dev: Arc<PmemDevice>,
    pkey: Option<ProtectionKey>,
    pub(crate) heap_id: u64,
    pub(crate) layout: HeapLayout,
    pub(crate) slots: Box<[SubSlot]>,
    pub(crate) sb_lock: TrackedMutex<()>,
    /// Serialises extent-table operations on the huge-object region (one
    /// region per heap — huge allocations are rare and large, so a single
    /// lock does not contend with the per-CPU hot path).
    pub(crate) huge_lock: TrackedMutex<()>,
    /// Set by load-time recovery when the huge region's metadata was hit
    /// by an uncorrectable media error or fails validation: every huge
    /// operation is refused until `pfsck --repair` rebuilds it.
    pub(crate) huge_quarantined: AtomicBool,
    recovery: RecoveryReport,
    pub(crate) ops: OpCounters,
    /// Self-healing counters and the scrubber cursor ([`crate::selfheal`]).
    pub(crate) health: HealthCounters,
    /// The transient caching layer ([`crate::frontend`]); `None` when
    /// disabled via [`HeapConfig::without_cache`].
    cache: Option<HeapCache>,
}

impl std::fmt::Debug for PoseidonHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoseidonHeap")
            .field("heap_id", &self.heap_id)
            .field("num_subheaps", &self.layout.num_subheaps())
            .field("user_size_per_subheap", &self.layout.user_size)
            .field("protected", &self.pkey.is_some())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// (sub-heap, micro-log slot) pinned by the calling thread's open
    /// transaction, per heap id (§5.3: a transaction's allocations all go
    /// to one sub-heap and one slot, so its commit — one micro-log
    /// truncation — is atomic and independent of other transactions).
    static TX_SUBHEAP: RefCell<HashMap<u64, (u16, usize)>> = RefCell::new(HashMap::new());
}

impl PoseidonHeap {
    /// Loads the heap on `dev` if one exists, otherwise creates one —
    /// the paper's `poseidon_init`.
    ///
    /// # Errors
    ///
    /// Propagates creation or load errors.
    pub fn open(dev: Arc<PmemDevice>, config: HeapConfig) -> Result<PoseidonHeap> {
        let magic: u64 = dev.read_pod(0)?;
        if magic == SUPERBLOCK_MAGIC {
            Self::load(dev, config)
        } else {
            Self::create(dev, config)
        }
    }

    /// Creates a fresh heap on `dev`.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] if the device cannot host the
    /// requested sub-heap count, [`PoseidonError::Corrupted`] if a heap is
    /// already present, or device/MPK errors.
    pub fn create(dev: Arc<PmemDevice>, config: HeapConfig) -> Result<PoseidonHeap> {
        let magic: u64 = dev.read_pod(0)?;
        if magic == SUPERBLOCK_MAGIC {
            return Err(PoseidonError::Corrupted("device already holds a Poseidon heap"));
        }
        let n = config.num_subheaps.unwrap_or_else(|| dev.topology().cpus().min(u16::MAX as usize) as u16);
        let layout = HeapLayout::compute(dev.capacity(), n)?;
        let heap_id = random_heap_id();
        // Format the huge region first: the superblock magic (written
        // last inside `superblock::create`) stays the heap's single
        // last-published commit point.
        hugeregion::format(&dev, &layout)?;
        superblock::create(&dev, &layout, heap_id)?;
        let pkey = Self::protect(&dev, &layout, config)?;
        Ok(Self::assemble(dev, pkey, heap_id, layout, RecoveryReport::default(), config))
    }

    /// Loads an existing heap from `dev`, running crash recovery (§5.1):
    /// replay the superblock undo log, protect metadata with MPK, then
    /// replay each sub-heap's undo and micro logs.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if no valid heap is present.
    pub fn load(dev: Arc<PmemDevice>, config: HeapConfig) -> Result<PoseidonHeap> {
        // A grow's epoch commit rides the superblock undo log: replay it
        // *before* the chain is parsed, so a torn grow resolves to the
        // old layout instead of failing the open with a half-written
        // record. Safe pre-protection: the previous owner's teardown
        // reset the page tags, and the load below re-tags everything.
        let sb_replayed = crate::undo::replay(&dev, superblock::undo_area())?;
        let (header, layout) = superblock::load(&dev)?;
        let pkey = Self::protect(&dev, &layout, config)?;
        let recovered = {
            let _guard = pkey.map(|k| dev.mpk().grant_write(k));
            recovery::recover(&dev, &layout)
        };
        let (mut report, quarantined) = match recovered {
            Ok(v) => v,
            Err(e) => {
                // A failed recovery (e.g. a crash mid-replay) must hand
                // its protection key back, or repeated load attempts
                // exhaust the 16-key space. Best-effort: the device may
                // already be refusing operations.
                if let Some(k) = pkey {
                    for (base, len) in layout.meta_ranges() {
                        let _ = dev.set_page_key(base, len, ProtectionKey::DEFAULT);
                    }
                    let _ = dev.mpk().pkey_free(k);
                }
                return Err(e);
            }
        };
        report.superblock_undo_replayed |= sb_replayed;
        let heap = Self::assemble(dev, pkey, header.heap_id, layout, report, config);
        // Mark already-created sub-heaps from the directory. A sub-heap
        // condemned online (state DIR_QUARANTINED) was created too — its
        // slot keeps reporting SubheapQuarantined rather than InvalidFree.
        for sub in 0..heap.layout.num_subheaps() {
            let state = superblock::dir_entry(&heap.dev, sub)?.state;
            if state == 1 || state == superblock::DIR_QUARANTINED {
                heap.slots[sub as usize].created.store(true, Ordering::Release);
            }
        }
        for sub in quarantined {
            heap.slots[sub as usize].quarantined.store(true, Ordering::Release);
        }
        heap.huge_quarantined.store(heap.recovery.huge_region_quarantined, Ordering::Release);
        Ok(heap)
    }

    fn protect(
        dev: &Arc<PmemDevice>,
        layout: &HeapLayout,
        config: HeapConfig,
    ) -> Result<Option<ProtectionKey>> {
        if config.unprotected {
            return Ok(None);
        }
        let pkey = dev.mpk().pkey_alloc(AccessRights::ReadOnly).map_err(|_| {
            PoseidonError::Corrupted("no free MPK protection keys (too many heaps open on this device)")
        })?;
        // An epoch chain has one metadata range per epoch (growth appends
        // its new sub-heaps' metadata at the old capacity boundary).
        for (base, len) in layout.meta_ranges() {
            dev.set_page_key(base, len, pkey)?;
        }
        Ok(Some(pkey))
    }

    fn assemble(
        dev: Arc<PmemDevice>,
        pkey: Option<ProtectionKey>,
        heap_id: u64,
        layout: HeapLayout,
        recovery: RecoveryReport,
        config: HeapConfig,
    ) -> PoseidonHeap {
        // Slots are pre-sized for the largest sub-heap set an epoch chain
        // can reach: `grow` publishes new sub-heaps by bumping the layout's
        // epoch count, with no reallocation racing the lock-free readers.
        let slots = (0..MAX_SUBHEAPS)
            .map(|_| SubSlot {
                lock: TrackedMutex::new(()),
                created: AtomicBool::new(false),
                quarantined: AtomicBool::new(false),
                tx_slots: std::sync::atomic::AtomicU32::new(0),
            })
            .collect();
        // The cache is DRAM-only and rebuilt empty on every open — there
        // is deliberately nothing about it to recover.
        let cache =
            config.cache.enabled.then(|| HeapCache::new(config.cache, &layout, dev.topology().cpus()));
        PoseidonHeap {
            dev,
            pkey,
            heap_id,
            layout,
            slots,
            sb_lock: TrackedMutex::new(()),
            huge_lock: TrackedMutex::new(()),
            huge_quarantined: AtomicBool::new(false),
            recovery,
            ops: OpCounters::default(),
            health: HealthCounters::default(),
            cache,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    /// This heap's random identity (embedded in every pointer).
    pub fn heap_id(&self) -> u64 {
        self.heap_id
    }

    /// The heap geometry.
    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    /// What the load-time recovery pass found (all-default for a freshly
    /// created heap).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// Alias for [`recovery_report`](Self::recovery_report): the report
    /// of the most recent load-time recovery.
    pub fn last_recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Indices of sub-heaps quarantined wholesale by the load-time
    /// recovery (empty on a healthy heap). Their blocks are frozen until
    /// `pfsck --repair` rebuilds the damaged metadata.
    pub fn quarantined_subheaps(&self) -> Vec<u16> {
        (0..self.layout.num_subheaps())
            .filter(|&sub| self.slots[sub as usize].quarantined.load(Ordering::Acquire))
            .collect()
    }

    /// The caching layer, when enabled.
    pub(crate) fn cache(&self) -> Option<&HeapCache> {
        self.cache.as_ref()
    }

    /// Detaches the caching layer (clean-close teardown needs to drain
    /// magazines mutably while still opening operation sessions on
    /// `&self`).
    pub(crate) fn take_cache(&mut self) -> Option<HeapCache> {
        self.cache.take()
    }

    /// Re-attaches the caching layer after [`take_cache`](Self::take_cache).
    pub(crate) fn put_cache(&mut self, cache: HeapCache) {
        self.cache = Some(cache);
    }

    /// Whether `sub` is created and not quarantined — i.e. safe to open
    /// an operation session on.
    pub(crate) fn sub_usable(&self, sub: u16) -> bool {
        let slot = &self.slots[sub as usize];
        slot.created.load(Ordering::Acquire) && !slot.quarantined.load(Ordering::Acquire)
    }

    pub(crate) fn note_alloc(&self) {
        self.ops.allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_free(&self) {
        self.ops.frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected_free(&self) {
        self.ops.rejected_frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Grants the calling thread metadata write access for the duration of
    /// the returned guard (no-op when protection is disabled).
    pub(crate) fn write_guard(&self) -> Option<PkruGuard<'_>> {
        self.pkey.map(|k| self.dev.mpk().grant_write(k))
    }

    /// Opens a mutating operation session on `sub`: grants metadata write
    /// access, takes the sub-heap lock, and validates + maps the whole
    /// metadata range *once*. Every word access inside the operation then
    /// goes through the session's view with no further per-word checks.
    pub(crate) fn begin_op(&self, sub: u16) -> Result<OpSession<'_>> {
        let pkru = self.write_guard();
        let lock = self.slots[sub as usize].lock.lock();
        OpSession::guarded(SubCtx { dev: &self.dev, layout: &self.layout, sub }, lock, pkru)
    }

    /// Opens a read-only operation session on `sub` (no `wrpkru` pair —
    /// metadata pages rest at read-only, so reads need no grant).
    pub(crate) fn begin_read_op(&self, sub: u16) -> Result<OpSession<'_>> {
        let lock = self.slots[sub as usize].lock.lock();
        OpSession::read_only(SubCtx { dev: &self.dev, layout: &self.layout, sub }, lock)
    }

    pub(crate) fn huge_ctx(&self) -> HugeCtx<'_> {
        HugeCtx { dev: &self.dev, layout: &self.layout }
    }

    /// Opens a mutating session on the huge region (write grant + huge
    /// lock), refusing if recovery quarantined the region.
    pub(crate) fn begin_huge(&self) -> Result<hugeregion::HugeOp<'_>> {
        if self.huge_quarantined.load(Ordering::Acquire) {
            return Err(PoseidonError::SubheapQuarantined { subheap: HUGE_SUBHEAP });
        }
        let pkru = self.write_guard();
        let lock = self.huge_lock.lock();
        hugeregion::HugeOp::guarded(self.huge_ctx(), lock, pkru)
    }

    /// Opens a read-only session on the huge region.
    pub(crate) fn begin_huge_read(&self) -> Result<hugeregion::HugeOp<'_>> {
        if self.huge_quarantined.load(Ordering::Acquire) {
            return Err(PoseidonError::SubheapQuarantined { subheap: HUGE_SUBHEAP });
        }
        let lock = self.huge_lock.lock();
        hugeregion::HugeOp::read_only(self.huge_ctx(), lock)
    }

    pub(crate) fn ensure_subheap(&self, sub: u16) -> Result<()> {
        if self.slots[sub as usize].created.load(Ordering::Acquire) {
            return Ok(());
        }
        let _sb = self.sb_lock.lock();
        if self.slots[sub as usize].created.load(Ordering::Acquire) {
            return Ok(());
        }
        let node = self.dev.topology().node_of_cpu(numa::current_cpu()) as u32;
        let _guard = self.write_guard();
        {
            let op = OpSession::unguarded(SubCtx { dev: &self.dev, layout: &self.layout, sub })?;
            subheap::create(&op, node)?;
        }
        superblock::publish_subheap(&self.dev, sub, DirEntry { state: 1, node })?;
        self.slots[sub as usize].created.store(true, Ordering::Release);
        Ok(())
    }

    /// Allocates `size` bytes from the calling CPU's sub-heap — the
    /// paper's `poseidon_alloc`. The usable size is `size` rounded up to
    /// its power-of-two buddy class. If the home sub-heap is quarantined
    /// after a media error — or a media fault strikes mid-allocation —
    /// the allocation transparently fails over to the next healthy
    /// sub-heap after the damaged unit is live-quarantined (see
    /// [`crate::selfheal`]).
    ///
    /// Small classes are served by the transient cache when possible
    /// (lock- and fence-free after the first, batched withdrawal); see
    /// [`CacheConfig`] for the durability contract of cached blocks.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::ZeroSize`], [`PoseidonError::TooLarge`],
    /// [`PoseidonError::NoSpace`], [`PoseidonError::TableFull`],
    /// [`PoseidonError::AllFailed`] when every sub-heap is quarantined,
    /// [`PoseidonError::MediaError`] when damage cannot be routed around,
    /// or device errors.
    pub fn alloc(&self, size: u64) -> Result<NvmPtr> {
        // Bounded failover: each media-fault retry either lands on a
        // different sub-heap (the damaged one was just condemned) or
        // finds freshly quarantined blocks withdrawn, so n+1 attempts
        // suffice before conceding.
        let mut attempts = self.layout.num_subheaps();
        loop {
            match self.alloc_attempt(size) {
                Err(e @ PoseidonError::MediaError { .. }) => {
                    let (e, retryable) = self.heal_media_error(e, OpKind::Alloc);
                    if !retryable || attempts == 0 {
                        return Err(e);
                    }
                    attempts -= 1;
                    self.health.failovers.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
    }

    fn alloc_attempt(&self, size: u64) -> Result<NvmPtr> {
        if let Some(ptr) = self.cached_alloc(size)? {
            return Ok(ptr);
        }
        let home = self.healthy_sub(self.layout.subheap_for_cpu(numa::current_cpu()))?;
        match self.alloc_with_eviction(home, size) {
            Err(e @ PoseidonError::NoSpace { .. }) => {
                // The home sub-heap is genuinely full: spill to the other
                // sub-heaps in round-robin order. This is also how load
                // reaches sub-heaps materialised by [`grow`](Self::grow)
                // beyond the CPU count: a full old sub-heap spills into
                // the fresh capacity instead of failing.
                let n = self.layout.num_subheaps();
                for i in 1..n {
                    let sub = (home + i) % n;
                    match self.alloc_with_eviction(sub, size) {
                        Err(PoseidonError::NoSpace { .. } | PoseidonError::SubheapQuarantined { .. }) => {
                            continue
                        }
                        other => return other,
                    }
                }
                // Every sub-heap is full: pressure-feedback to the
                // maintenance engine, mirroring the growth pressure flag.
                self.note_space_pressure();
                Err(e)
            }
            other => other,
        }
    }

    /// One sub-heap's slow-path allocation, retried once after handing its
    /// cached blocks back — the cache may be sitting on exactly the
    /// withdrawn capacity this request needs.
    fn alloc_with_eviction(&self, sub: u16, size: u64) -> Result<NvmPtr> {
        match self.alloc_on(sub, size, None) {
            Err(e @ PoseidonError::NoSpace { .. }) => {
                if self.evict_subheap_cache(sub)? == 0 {
                    return Err(e);
                }
                self.alloc_on(sub, size, None)
            }
            other => other,
        }
    }

    fn claim_tx_slot(&self, sub: u16) -> Result<usize> {
        let bitmap = &self.slots[sub as usize].tx_slots;
        loop {
            let current = bitmap.load(Ordering::Acquire);
            let free = (!current).trailing_zeros() as usize;
            if free >= crate::layout::MICRO_SLOTS.min(32) {
                return Err(PoseidonError::TxSlotsExhausted { max: crate::layout::MICRO_SLOTS });
            }
            if bitmap
                .compare_exchange(current, current | (1 << free), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(free);
            }
        }
    }

    fn release_tx_slot(&self, sub: u16, slot: usize) {
        self.slots[sub as usize].tx_slots.fetch_and(!(1u32 << slot), Ordering::AcqRel);
    }

    /// Transactionally allocates `size` bytes — the paper's
    /// `poseidon_tx_alloc`. The allocation is recorded in the sub-heap's
    /// micro log; if the process crashes before the transaction commits
    /// (`is_end = true`), recovery frees every allocation of the
    /// transaction, preventing persistent leaks (§5.3).
    ///
    /// All allocations of one transaction go to the sub-heap the
    /// transaction started on, so the commit (one atomic micro-log
    /// truncation) covers them all.
    ///
    /// # Errors
    ///
    /// As for [`alloc`](Self::alloc), plus [`PoseidonError::TxTooLarge`]
    /// if the transaction exceeds the micro-log capacity. A media fault
    /// on the *first* allocation of a transaction fails over like
    /// [`alloc`](Self::alloc); once the transaction is pinned to a
    /// sub-heap, a fault quarantines the damage and returns the
    /// attributed error — abort the transaction.
    pub fn tx_alloc(&self, size: u64, is_end: bool) -> Result<NvmPtr> {
        let pinned = TX_SUBHEAP.with(|tx| tx.borrow().contains_key(&self.heap_id));
        let mut attempts = self.layout.num_subheaps();
        loop {
            match self.tx_alloc_attempt(size, is_end) {
                Err(e @ PoseidonError::MediaError { .. }) => {
                    let (e, retryable) = self.heal_media_error(e, OpKind::Tx);
                    // A pinned transaction cannot change sub-heaps
                    // mid-flight (§5.3: one sub-heap, one micro-log slot).
                    if pinned || !retryable || attempts == 0 {
                        return Err(e);
                    }
                    attempts -= 1;
                    self.health.failovers.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
    }

    fn tx_alloc_attempt(&self, size: u64, is_end: bool) -> Result<NvmPtr> {
        let open = TX_SUBHEAP.with(|tx| tx.borrow().get(&self.heap_id).copied());
        let (sub, slot, fresh) = match open {
            Some((sub, slot)) => (sub, slot, false),
            None => {
                let sub = self.healthy_sub(self.layout.subheap_for_cpu(numa::current_cpu()))?;
                (sub, self.claim_tx_slot(sub)?, true)
            }
        };
        let ptr = match self.alloc_on(sub, size, Some((self.heap_id, slot))) {
            Ok(ptr) => ptr,
            Err(e) => {
                if fresh {
                    self.release_tx_slot(sub, slot);
                }
                return Err(e);
            }
        };
        if is_end {
            // Commit: truncate this transaction's micro-log slot
            // atomically.
            let op = self.begin_op(sub)?;
            crate::microlog::truncate(&op, slot)?;
            drop(op);
            self.ops.tx_commits.fetch_add(1, Ordering::Relaxed);
            TX_SUBHEAP.with(|tx| tx.borrow_mut().remove(&self.heap_id));
            self.release_tx_slot(sub, slot);
        } else if fresh {
            TX_SUBHEAP.with(|tx| tx.borrow_mut().insert(self.heap_id, (sub, slot)));
        }
        Ok(ptr)
    }

    /// Commits the calling thread's open transaction without allocating
    /// (equivalent to passing `is_end = true` on the last `tx_alloc`, but
    /// usable when the commit decision comes after the final allocation).
    /// A no-op if no transaction is open.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn tx_commit(&self) -> Result<()> {
        self.tx_commit_inner().map_err(|e| self.heal_media_error(e, OpKind::Tx).0)
    }

    fn tx_commit_inner(&self) -> Result<()> {
        let Some((sub, slot)) = TX_SUBHEAP.with(|tx| tx.borrow_mut().remove(&self.heap_id)) else {
            return Ok(());
        };
        let op = match self.begin_op(sub) {
            Ok(op) => op,
            Err(e) => {
                // The sub-heap was condemned (or its metadata poisoned)
                // under the open transaction: the micro-log entries stay
                // pending inside the quarantined unit — recovery or
                // repair settles them — but the volatile slot must not
                // leak with it.
                self.release_tx_slot(sub, slot);
                return Err(e);
            }
        };
        crate::microlog::truncate(&op, slot)?;
        drop(op);
        self.ops.tx_commits.fetch_add(1, Ordering::Relaxed);
        self.release_tx_slot(sub, slot);
        Ok(())
    }

    /// Aborts the calling thread's open transaction, freeing every
    /// allocation it made (exactly what recovery would do after a crash).
    /// A no-op if no transaction is open.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn tx_abort(&self) -> Result<()> {
        self.tx_abort_inner().map_err(|e| self.heal_media_error(e, OpKind::Tx).0)
    }

    fn tx_abort_inner(&self) -> Result<()> {
        let Some((sub, slot)) = TX_SUBHEAP.with(|tx| tx.borrow_mut().remove(&self.heap_id)) else {
            return Ok(());
        };
        let op = match self.begin_op(sub) {
            Ok(op) => op,
            Err(e) => {
                // Same policy as `tx_commit_inner`: the entries stay
                // pending in the condemned unit; only the volatile slot
                // is reclaimed.
                self.release_tx_slot(sub, slot);
                return Err(e);
            }
        };
        for ptr in crate::microlog::entries(&op, slot)? {
            if ptr.subheap() == HUGE_SUBHEAP {
                // A transactional huge allocation: free the extent through
                // the huge region (lock order sub → huge is consistent —
                // nothing takes them the other way round).
                match hugeregion::free(&self.begin_huge()?, ptr.offset()) {
                    Ok(_)
                    | Err(PoseidonError::DoubleFree { .. })
                    | Err(PoseidonError::InvalidFree { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
            match subheap::free_block(&op, ptr.offset()) {
                Ok(outcome) => {
                    if outcome.quarantined {
                        self.health.blocks_quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(PoseidonError::DoubleFree { .. }) | Err(PoseidonError::InvalidFree { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.ops.tx_aborts.fetch_add(1, Ordering::Relaxed);
        crate::microlog::truncate(&op, slot)?;
        drop(op);
        self.release_tx_slot(sub, slot);
        Ok(())
    }

    /// Frees the block at `ptr` — the paper's `poseidon_free`. The request
    /// is validated against the block table first: invalid frees and
    /// double frees are rejected without touching metadata (§4.7).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::WrongHeap`], [`PoseidonError::BadSubheap`],
    /// [`PoseidonError::InvalidFree`], [`PoseidonError::DoubleFree`], or
    /// device errors. A mid-free media fault quarantines the damaged
    /// unit (see [`crate::selfheal`]) and returns the attributed
    /// [`PoseidonError::MediaError`] — the caller's block is inside the
    /// damage, so there is nothing to fail over to.
    pub fn free(&self, ptr: NvmPtr) -> Result<()> {
        self.free_inner(ptr).map_err(|e| self.heal_media_error(e, OpKind::Free).0)
    }

    fn free_inner(&self, ptr: NvmPtr) -> Result<()> {
        self.check_ptr(ptr)?;
        if ptr.subheap() == HUGE_SUBHEAP {
            return self.free_huge(ptr);
        }
        // The residency map adjudicates cache-managed blocks (including
        // their double frees) without locks or metadata reads.
        if self.cached_free(ptr)? {
            return Ok(());
        }
        self.free_slow(ptr)
    }

    /// Reallocates the block at `ptr` to `new_size`: allocates a new
    /// block (routing between the sub-heaps and the huge region as the
    /// new size requires), copies `min(old, new)` bytes of user data,
    /// persists the copy, and frees the old block. On error the old
    /// block is left untouched.
    ///
    /// # Errors
    ///
    /// As for [`alloc`](Self::alloc) and [`free`](Self::free);
    /// [`PoseidonError::MediaError`] if the old data cannot be read (the
    /// new block is released again).
    pub fn realloc(&self, ptr: NvmPtr, new_size: u64) -> Result<NvmPtr> {
        let old_size = self.block_size(ptr)?;
        let new_ptr = self.alloc(new_size)?;
        let copy = || -> Result<()> {
            let src = self.raw_offset(ptr)?;
            let dst = self.raw_offset(new_ptr)?;
            let total = old_size.min(new_size);
            let mut buf = vec![0u8; total.min(1 << 20) as usize];
            let mut done = 0u64;
            while done < total {
                let n = (total - done).min(buf.len() as u64) as usize;
                self.dev.read(src + done, &mut buf[..n])?;
                self.dev.write(dst + done, &buf[..n])?;
                done += n as u64;
            }
            self.dev.persist(dst, total)?;
            Ok(())
        };
        if let Err(e) = copy() {
            let _ = self.free(new_ptr);
            return Err(e);
        }
        self.free(ptr)?;
        Ok(new_ptr)
    }

    fn check_ptr(&self, ptr: NvmPtr) -> Result<()> {
        if ptr.is_null() {
            return Err(PoseidonError::InvalidFree { offset: 0 });
        }
        if ptr.heap_id != self.heap_id {
            return Err(PoseidonError::WrongHeap { pointer_heap: ptr.heap_id, this_heap: self.heap_id });
        }
        if ptr.subheap() >= self.layout.num_subheaps() {
            // The sentinel sub-heap id names the huge-object region — but
            // only on layouts that carve one.
            if ptr.subheap() != HUGE_SUBHEAP || self.layout.huge_data_size() == 0 {
                return Err(PoseidonError::BadSubheap { subheap: ptr.subheap() });
            }
        }
        Ok(())
    }

    /// Converts a persistent pointer to its device offset — the paper's
    /// `poseidon_get_rawptr`. Write user data through
    /// [`device()`](Self::device) at this offset.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::WrongHeap`], [`PoseidonError::BadSubheap`], or an
    /// offset beyond the sub-heap's user region.
    pub fn raw_offset(&self, ptr: NvmPtr) -> Result<u64> {
        self.check_ptr(ptr)?;
        if ptr.subheap() == HUGE_SUBHEAP {
            // Huge pointers carry *logical* huge-region offsets; the
            // layout maps them into the containing physical band (extents
            // never straddle band walls, so the whole block is contiguous
            // at the returned device offset).
            return self
                .layout
                .huge_phys_of(ptr.offset(), 1)
                .ok_or(PoseidonError::InvalidFree { offset: ptr.offset() });
        }
        if ptr.offset() >= self.layout.user_size {
            return Err(PoseidonError::InvalidFree { offset: ptr.offset() });
        }
        Ok(self.layout.user_base(ptr.subheap()) + ptr.offset())
    }

    /// Converts a device offset back to a persistent pointer — the
    /// paper's `poseidon_get_nvmptr`.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::InvalidFree`] if the offset is not inside any
    /// sub-heap's user region.
    pub fn nvmptr_of(&self, device_offset: u64) -> Result<NvmPtr> {
        match self.layout.locate(device_offset) {
            Region::HugeData { logical } => Ok(NvmPtr::new(self.heap_id, HUGE_SUBHEAP, logical)),
            Region::SubUser(sub) => {
                Ok(NvmPtr::new(self.heap_id, sub, device_offset - self.layout.user_base(sub)))
            }
            _ => Err(PoseidonError::InvalidFree { offset: device_offset }),
        }
    }

    /// Reads the heap's root pointer — the paper's `poseidon_get_root`.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn root(&self) -> Result<NvmPtr> {
        superblock::root(&self.dev)
    }

    /// Sets the heap's root pointer — the paper's `poseidon_set_root`.
    /// Crash-atomic via the superblock undo log.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::WrongHeap`] for a non-null pointer from another
    /// heap, or device errors.
    pub fn set_root(&self, ptr: NvmPtr) -> Result<()> {
        if !ptr.is_null() {
            self.check_ptr(ptr)?;
        }
        // Anchoring a pointer promises it survives a crash, but cached
        // allocations are transient until committed: persist every
        // checked-out block (batched, one two-fence scope per sub-heap)
        // before the root makes any of them reachable.
        self.publish_cached()?;
        let _guard = self.write_guard();
        let _sb = self.sb_lock.lock();
        superblock::set_root(&self.dev, ptr)
    }

    /// Returns the reserved size (the rounded power-of-two class size) of
    /// the live block at `ptr` — useful for bounds-checking writes into
    /// an allocation.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::InvalidFree`] if `ptr` does not name a live
    /// allocated block, plus the usual pointer-validation errors.
    pub fn block_size(&self, ptr: NvmPtr) -> Result<u64> {
        self.check_ptr(ptr)?;
        let sub = ptr.subheap();
        if sub == HUGE_SUBHEAP {
            let op = self.begin_huge_read()?;
            return match hugeregion::lookup(&op, ptr.offset())? {
                Some(rec) if rec.state == crate::persist::state::ALLOC => Ok(rec.len),
                _ => Err(PoseidonError::InvalidFree { offset: ptr.offset() }),
            };
        }
        if !self.slots[sub as usize].created.load(Ordering::Acquire) {
            return Err(PoseidonError::InvalidFree { offset: ptr.offset() });
        }
        if self.slots[sub as usize].quarantined.load(Ordering::Acquire) {
            return Err(PoseidonError::SubheapQuarantined { subheap: sub });
        }
        // A cache-served block is live to the caller but still FREE on
        // media; the residency map is its source of truth.
        if let Some(cache) = self.cache() {
            if let Some(size) = cache.checked_out_size(sub, ptr.offset()) {
                return Ok(size);
            }
        }
        let op = self.begin_read_op(sub)?;
        match crate::hashtable::lookup(&op, ptr.offset())? {
            Some((_, record)) if record.state == crate::persist::state::ALLOC => Ok(record.size),
            _ => Err(PoseidonError::InvalidFree { offset: ptr.offset() }),
        }
    }

    /// Runs a full structural audit of every created sub-heap (block
    /// alignment, non-overlap, free-list/table agreement, level counts).
    /// Intended for tests and debugging.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] naming the first violated invariant.
    pub fn audit(&self) -> Result<Vec<(u16, SubheapAudit)>> {
        let mut out = Vec::new();
        for sub in 0..self.layout.num_subheaps() {
            let slot = &self.slots[sub as usize];
            // Quarantined sub-heaps have untrustworthy metadata — auditing
            // them would report phantom corruption (or fail on poison).
            if !slot.created.load(Ordering::Acquire) || slot.quarantined.load(Ordering::Acquire) {
                continue;
            }
            let op = self.begin_read_op(sub)?;
            let audit = match self.cache() {
                // Let the auditor classify cache-withdrawn records: they
                // are FREE + flagged on media and absent from the buddy
                // lists, which a cache-blind audit would call corruption.
                Some(cache) => subheap::audit_with(&op, |off| cache.residency(sub, off))?,
                None => subheap::audit(&op)?,
            };
            out.push((sub, audit));
        }
        Ok(out)
    }

    /// Audits the huge-object region's extent table (tiling, alignment,
    /// coalescing — see [`hugeregion`]'s invariants). Returns `None` when
    /// the layout carves no huge region or recovery quarantined it.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] naming the violated invariant.
    pub fn huge_audit(&self) -> Result<Option<HugeAudit>> {
        if self.layout.huge_data_size() == 0 || self.huge_quarantined.load(Ordering::Acquire) {
            return Ok(None);
        }
        let op = self.begin_huge_read()?;
        Ok(Some(hugeregion::audit(&op)?))
    }

    /// Per-lock serial-time profile (sub-heap locks and the superblock
    /// lock), for scalability projection. Per-CPU sub-heap locks are
    /// *parallel* resources — the projection takes the max across them,
    /// which is exactly the paper's point about per-CPU sub-heaps.
    pub fn contention_profile(&self) -> Vec<LockProfile> {
        let mut profile: Vec<LockProfile> = self
            .slots
            .iter()
            .take(self.layout.num_subheaps() as usize)
            .enumerate()
            .map(|(i, slot)| {
                let mut p = slot.lock.profile(format!("subheap[{i}]"));
                // Cache hits bypass this lock entirely; report them next
                // to the acquisitions they replaced.
                if let Some(cache) = self.cache() {
                    p.cache = Some(cache.stats(i as u16));
                }
                p
            })
            .collect();
        profile.push(self.sb_lock.profile("superblock"));
        profile.push(self.huge_lock.profile("hugeregion"));
        profile
    }

    /// Zeroes the lock counters (between benchmark phases).
    pub fn reset_contention(&self) {
        for slot in self.slots.iter() {
            slot.lock.reset();
        }
        self.sb_lock.reset();
        self.huge_lock.reset();
        if let Some(cache) = self.cache() {
            cache.reset_stats();
        }
    }

    /// Explicitly defragments every created sub-heap to completion:
    /// merges all buddy pairs in every class, hands cached blocks back
    /// first (so defragmentation sees the true free population), and
    /// hole-punches emptied hash-table levels. Returns the number of
    /// merges performed.
    ///
    /// This is the maintenance engine run to quiescence: pressure is
    /// raised (so the pass trims caches) and unbounded
    /// [`maint_step`](Self::maint_step)s run until one observes a fully
    /// clean cycle. For an incremental, serving-loop-safe version call
    /// [`maint_step`](Self::maint_step) /
    /// [`maint_tick`](Self::maint_tick) instead.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn defragment(&self) -> Result<u64> {
        self.note_space_pressure();
        let mut merged = 0;
        loop {
            let step = self.maint_step(usize::MAX)?;
            merged += step.merges;
            if step.fully_defragged {
                break;
            }
        }
        self.ops.defrag_merges.fetch_add(merged, Ordering::Relaxed);
        Ok(merged)
    }

    /// Grows the pool online to `new_capacity` bytes — extends the
    /// device, commits a new layout epoch in the superblock, and
    /// materialises the added sub-heaps (and huge-region band) without
    /// stopping concurrent allocations.
    ///
    /// The commit is a single two-fence undo scope covering the epoch
    /// record and the header's epoch count: a crash at any instant leaves
    /// the pool either entirely on the old layout or entirely on the new
    /// one. Completion work after the commit point (huge-band bookkeeping)
    /// is idempotent and re-run by load-time recovery, so a torn grow
    /// finishes itself on the next open.
    ///
    /// New sub-heaps are created lazily on first allocation, exactly like
    /// the originals, so growing an almost-empty pool touches only
    /// metadata-sized state. CPU routing re-balances over the enlarged
    /// sub-heap set immediately; full old sub-heaps also spill into the
    /// new ones on `NoSpace`.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::BadGeometry`] when `new_capacity` does not grow
    /// the pool (or the epoch chain / sub-heap directory is full), or
    /// device errors — a failure before the commit leaves the heap on the
    /// old layout.
    pub fn grow(&self, new_capacity: u64) -> Result<GrowReport> {
        let _sb = self.sb_lock.lock();
        let old_capacity = self.layout.capacity();
        let epoch = self.layout.plan_growth(new_capacity)?;
        // Extend the device first — durable immediately, like ftruncate
        // on a DAX file. A crash right after leaves a longer device under
        // the old layout, which `superblock::load` accepts (the layout
        // only has to fit); a re-issued grow then skips this call.
        if new_capacity > self.dev.capacity() {
            self.dev.grow(new_capacity).map_err(PoseidonError::from)?;
        }
        // Tag the new metadata pages before the epoch becomes visible, so
        // there is no window where a published sub-heap's metadata is
        // writable to everyone.
        if let Some(pkey) = self.pkey {
            if epoch.num_subheaps > 0 {
                self.dev.set_page_key(epoch.base, epoch.num_subheaps as u64 * self.layout.meta_size, pkey)?;
            }
        }
        let index = self.layout.epoch_count();
        {
            let _guard = self.write_guard();
            superblock::commit_epoch(&self.dev, index, &epoch)?;
        }
        // THE commit point has passed; everything below is completion
        // that recovery re-runs idempotently after a crash.
        self.layout.push_epoch(epoch).expect("planned epoch extends the chain");
        let mut huge_bytes_added = 0;
        if epoch.huge_size > 0 && !self.huge_quarantined.load(Ordering::Acquire) {
            let op = self.begin_huge()?;
            huge_bytes_added = hugeregion::extend_to_layout(&op)?;
        }
        // Re-balance: hand cached blocks back so magazines re-home under
        // the enlarged CPU→sub-heap routing instead of serving stale
        // assignments.
        self.drain_cache_for_rebalance()?;
        Ok(GrowReport {
            old_capacity,
            new_capacity,
            epoch: index,
            new_subheaps: epoch.num_subheaps as u16,
            huge_bytes_added,
        })
    }

    /// Snapshot of this heap's operation counters.
    pub fn op_stats(&self) -> HeapOpStats {
        HeapOpStats {
            allocs: self.ops.allocs.load(Ordering::Relaxed),
            frees: self.ops.frees.load(Ordering::Relaxed),
            rejected_frees: self.ops.rejected_frees.load(Ordering::Relaxed),
            tx_commits: self.ops.tx_commits.load(Ordering::Relaxed),
            tx_aborts: self.ops.tx_aborts.load(Ordering::Relaxed),
            defrag_merges: self.ops.defrag_merges.load(Ordering::Relaxed),
        }
    }

    /// Deinitialises the heap — the paper's `poseidon_finish`. Releases
    /// the MPK key and removes the page tags (the heap data itself stays
    /// on the device, ready to be loaded again).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn close(mut self) -> Result<()> {
        // Clean shutdown keeps every handed-out pointer valid across the
        // reload: publish checked-out blocks as ALLOC and return resident
        // ones to the buddy lists, leaving no cache flags on media.
        self.flush_cache()?;
        self.release_protection()?;
        Ok(())
    }

    fn release_protection(&mut self) -> Result<()> {
        if let Some(pkey) = self.pkey.take() {
            for (base, len) in self.layout.meta_ranges() {
                self.dev.set_page_key(base, len, ProtectionKey::DEFAULT)?;
            }
            let _ = self.dev.mpk().pkey_free(pkey);
        }
        Ok(())
    }
}

impl Drop for PoseidonHeap {
    fn drop(&mut self) {
        let _ = self.release_protection();
    }
}

fn random_heap_id() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    loop {
        let id = std::collections::hash_map::RandomState::new().build_hasher().finish();
        if id != 0 {
            return id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn heap() -> PoseidonHeap {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2)).unwrap()
    }

    #[test]
    fn alloc_free_roundtrip() {
        let h = heap();
        let p = h.alloc(100).unwrap();
        assert_eq!(p.heap_id, h.heap_id());
        let raw = h.raw_offset(p).unwrap();
        h.device().write(raw, &[7u8; 100]).unwrap();
        h.device().persist(raw, 100).unwrap();
        h.free(p).unwrap();
        assert!(matches!(h.free(p), Err(PoseidonError::DoubleFree { .. })));
    }

    #[test]
    fn pointer_conversions_roundtrip() {
        let h = heap();
        let p = h.alloc(64).unwrap();
        let raw = h.raw_offset(p).unwrap();
        let back = h.nvmptr_of(raw).unwrap();
        assert_eq!(back, p);
        assert!(h.nvmptr_of(0).is_err()); // metadata is not user space
    }

    #[test]
    fn foreign_pointers_are_rejected() {
        let h1 = heap();
        let h2 = heap();
        let p = h1.alloc(64).unwrap();
        assert!(matches!(h2.free(p), Err(PoseidonError::WrongHeap { .. })));
        assert!(matches!(h2.raw_offset(p), Err(PoseidonError::WrongHeap { .. })));
    }

    #[test]
    fn user_writes_cannot_touch_metadata() {
        let h = heap();
        let _p = h.alloc(64).unwrap();
        // Direct store into the metadata prefix must fault.
        let err = h.device().write(4096, &[0xFF; 8]).unwrap_err();
        assert!(matches!(err, pmem::PmemError::ProtectionFault { .. }));
        // And a "heap overflow" running off the end of user data into the
        // next region is caught at the metadata boundary too (user regions
        // are the device tail, so overflow upward from the last block
        // would leave the device; overflow downward hits metadata).
        let first_user = h.layout().user_base(0);
        let err = h.device().write(first_user - 8, &[0xFF; 16]).unwrap_err();
        assert!(matches!(err, pmem::PmemError::ProtectionFault { .. }));
    }

    #[test]
    fn root_pointer_survives_reload() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap_id;
        {
            let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            heap_id = h.heap_id();
            let p = h.alloc(128).unwrap();
            h.set_root(p).unwrap();
            h.close().unwrap();
        }
        let h = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
        assert_eq!(h.heap_id(), heap_id);
        let root = h.root().unwrap();
        assert!(!root.is_null());
        assert_eq!(root.heap_id, heap_id);
        // The root block is still allocated: freeing succeeds exactly once.
        h.free(root).unwrap();
        assert!(matches!(h.free(root), Err(PoseidonError::DoubleFree { .. })));
    }

    #[test]
    fn create_refuses_existing_heap_and_load_refuses_blank() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        drop(h);
        assert!(matches!(
            PoseidonHeap::create(dev.clone(), HeapConfig::new()),
            Err(PoseidonError::Corrupted(_))
        ));
        let blank = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        assert!(matches!(PoseidonHeap::load(blank, HeapConfig::new()), Err(PoseidonError::Corrupted(_))));
    }

    #[test]
    fn per_cpu_subheaps_isolate_allocations() {
        let h = Arc::new(heap());
        let h1 = h.clone();
        let p0 = {
            let _pin = pmem::numa::CpuPinGuard::pin(0);
            h.alloc(64).unwrap()
        };
        let p1 = std::thread::spawn(move || {
            pmem::numa::set_current_cpu(1);
            h1.alloc(64).unwrap()
        })
        .join()
        .unwrap();
        assert_eq!(p0.subheap(), 0);
        assert_eq!(p1.subheap(), 1);
        // Cross-thread free works (§5.7).
        h.free(p1).unwrap();
        h.free(p0).unwrap();
    }

    #[test]
    fn tx_alloc_commit_keeps_blocks() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let a = h.tx_alloc(64, false).unwrap();
        let b = h.tx_alloc(64, true).unwrap(); // commit
        drop(h);
        dev.simulate_crash(CrashMode::Strict, 0);
        let h = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
        assert_eq!(h.recovery_report().tx_allocations_reverted, 0);
        // Both blocks survived: they can each be freed exactly once.
        h.free(a).unwrap();
        h.free(b).unwrap();
    }

    #[test]
    fn uncommitted_tx_is_reverted_on_recovery() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let a = h.tx_alloc(64, false).unwrap();
        let b = h.tx_alloc(64, false).unwrap(); // never committed
        drop(h);
        dev.simulate_crash(CrashMode::Strict, 0);
        let h = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
        assert_eq!(h.recovery_report().tx_allocations_reverted, 2);
        // The blocks were freed by recovery: freeing them again is a
        // double free.
        assert!(matches!(h.free(a), Err(PoseidonError::DoubleFree { .. })));
        assert!(matches!(h.free(b), Err(PoseidonError::DoubleFree { .. })));
        h.audit().unwrap();
    }

    #[test]
    fn tx_commit_without_alloc() {
        let h = heap();
        let a = h.tx_alloc(64, false).unwrap();
        let b = h.tx_alloc(64, false).unwrap();
        h.tx_commit().unwrap();
        // Committed: the blocks are live and freeable exactly once.
        h.free(a).unwrap();
        h.free(b).unwrap();
        // Idempotent without an open transaction.
        h.tx_commit().unwrap();
        assert_eq!(h.op_stats().tx_commits, 1);
    }

    #[test]
    fn tx_abort_frees_allocations() {
        let h = heap();
        let a = h.tx_alloc(64, false).unwrap();
        h.tx_abort().unwrap();
        assert!(matches!(h.free(a), Err(PoseidonError::DoubleFree { .. })));
        // Abort with no open tx is a no-op.
        h.tx_abort().unwrap();
    }

    #[test]
    fn unprotected_heap_skips_mpk() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let before = dev.mpk().stats().wrpkru_count;
        let h =
            PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2).without_protection()).unwrap();
        let p = h.alloc(64).unwrap();
        h.free(p).unwrap();
        assert_eq!(dev.mpk().stats().wrpkru_count, before);
        // Metadata is writable by anyone — that's the point of the ablation.
        dev.write(4096, &[1]).unwrap();
    }

    #[test]
    fn audit_passes_after_mixed_workload() {
        let h = heap();
        let mut live = Vec::new();
        for i in 0..200u64 {
            live.push(h.alloc(32 + (i % 500)).unwrap());
            if i % 3 == 0 {
                let p = live.swap_remove((i as usize * 7) % live.len());
                h.free(p).unwrap();
            }
        }
        let audits = h.audit().unwrap();
        assert!(!audits.is_empty());
        for p in live {
            h.free(p).unwrap();
        }
        h.audit().unwrap();
    }

    #[test]
    fn too_large_and_zero_requests_fail_cleanly() {
        let h = heap();
        assert!(matches!(h.alloc(0), Err(PoseidonError::ZeroSize)));
        // Twice the user region exceeds the huge region too (it is a
        // quarter of the device); the error reports both effective caps.
        let req = h.layout().user_size * 2;
        assert!(req > h.layout().huge_data_size());
        match h.alloc(req) {
            Err(PoseidonError::TooLarge { requested, subheap_max, huge_remaining }) => {
                assert_eq!(requested, req);
                assert_eq!(subheap_max, h.layout().max_alloc());
                assert_eq!(huge_remaining, h.layout().huge_data_size());
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn huge_alloc_beyond_subheap_max_succeeds() {
        let h = heap();
        let max = h.layout().max_alloc();
        let p = h.alloc(max + 1).unwrap();
        assert_eq!(p.subheap(), u16::MAX, "huge pointers carry the sentinel sub-heap");
        // Reserved size is page-rounded, and data is writable end to end.
        let size = h.block_size(p).unwrap();
        assert!(size > max);
        let raw = h.raw_offset(p).unwrap();
        h.device().write(raw, &[0xA5; 4096]).unwrap();
        h.device().write(raw + size - 8, &[0xA5; 8]).unwrap();
        h.device().persist(raw, size).unwrap();
        // Pointer conversions roundtrip through the huge data region.
        assert_eq!(h.nvmptr_of(raw).unwrap(), p);
        let audit = h.huge_audit().unwrap().unwrap();
        assert_eq!(audit.alloc_extents, 1);
        h.free(p).unwrap();
        assert!(matches!(h.free(p), Err(PoseidonError::DoubleFree { .. })));
        assert!(matches!(h.block_size(p), Err(PoseidonError::InvalidFree { .. })));
        let audit = h.huge_audit().unwrap().unwrap();
        assert_eq!(audit.alloc_extents, 0);
        assert_eq!(audit.free_bytes, h.layout().huge_data_size());
    }

    #[test]
    fn huge_pointers_are_rejected_without_a_huge_region() {
        // A device below the carve-out threshold has no huge region: the
        // sentinel sub-heap id is an ordinary BadSubheap there.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(8 << 20)));
        let h = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(1)).unwrap();
        assert_eq!(h.layout().huge_data_size(), 0);
        match h.alloc(h.layout().max_alloc() + 1) {
            Err(PoseidonError::TooLarge { huge_remaining, .. }) => assert_eq!(huge_remaining, 0),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let foreign = NvmPtr::new(h.heap_id(), u16::MAX, 0);
        assert!(matches!(h.free(foreign), Err(PoseidonError::BadSubheap { .. })));
        assert!(h.huge_audit().unwrap().is_none());
    }

    #[test]
    fn huge_allocation_survives_crash_at_every_point() {
        // Adversarial sweep over the heap-level huge path: crash after
        // every k-th persisted event during alloc and free; after each
        // power cycle the reloaded heap must audit clean and either show
        // the op completed or fully rolled back.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let size;
        {
            let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            size = h.layout().max_alloc() + 1;
        }
        for stage in ["alloc", "free"] {
            let mut k = 1u64;
            loop {
                let result = {
                    let h = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
                    // Reset to the stage's pre-image (the previous crash
                    // may have left either the old or the new state).
                    let audit = h.huge_audit().unwrap().unwrap();
                    let live = (audit.alloc_extents == 1)
                        .then(|| h.nvmptr_of(h.layout().huge_phys_of(0, 1).unwrap()).unwrap());
                    if stage == "alloc" {
                        if let Some(p) = live {
                            h.free(p).unwrap();
                        }
                        dev.arm_crash_after(k);
                        h.alloc(size).map(|_| ())
                    } else {
                        let p = live.unwrap_or_else(|| h.alloc(size).unwrap());
                        dev.arm_crash_after(k);
                        h.free(p)
                    }
                };
                dev.simulate_crash(CrashMode::Strict, k);
                {
                    let h = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
                    let audit = h.huge_audit().unwrap().unwrap();
                    assert_eq!(
                        audit.free_bytes + audit.alloc_bytes + audit.quarantined_bytes,
                        h.layout().huge_data_size(),
                        "crash point {k} in {stage} tore the extent table"
                    );
                    assert_eq!(audit.quarantined_extents, 0);
                }
                if result.is_ok() {
                    break;
                }
                k += 1;
                assert!(k < 200, "crash sweep did not converge");
            }
            assert!(k > 3, "sweep must cover interior crash points, swept only {k}");
        }
    }

    #[test]
    fn uncommitted_huge_tx_is_reverted_on_recovery() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let huge_size = h.layout().max_alloc() + 1;
        let small = h.tx_alloc(64, false).unwrap();
        let big = h.tx_alloc(huge_size, false).unwrap(); // never committed
        assert_eq!(big.subheap(), u16::MAX);
        drop(h);
        dev.simulate_crash(CrashMode::Strict, 0);
        let h = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert_eq!(h.recovery_report().tx_allocations_reverted, 2);
        assert!(matches!(h.free(small), Err(PoseidonError::DoubleFree { .. })));
        assert!(matches!(h.free(big), Err(PoseidonError::DoubleFree { .. })));
        let audit = h.huge_audit().unwrap().unwrap();
        assert_eq!(audit.alloc_extents, 0, "recovery must free the uncommitted huge extent");
        h.audit().unwrap();
    }

    #[test]
    fn committed_huge_tx_survives_recovery() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        let huge_size = h.layout().max_alloc() + 1;
        let big = h.tx_alloc(huge_size, true).unwrap(); // committed
        drop(h);
        dev.simulate_crash(CrashMode::Strict, 0);
        let h = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
        assert_eq!(h.recovery_report().tx_allocations_reverted, 0);
        h.free(big).unwrap();
    }

    #[test]
    fn huge_tx_abort_frees_the_extent() {
        let h = heap();
        let big = h.tx_alloc(h.layout().max_alloc() + 1, false).unwrap();
        h.tx_abort().unwrap();
        assert!(matches!(h.free(big), Err(PoseidonError::DoubleFree { .. })));
        assert_eq!(h.huge_audit().unwrap().unwrap().alloc_extents, 0);
    }

    #[test]
    fn realloc_crosses_between_subheap_and_huge_paths() {
        let h = heap();
        let max = h.layout().max_alloc();
        let small = h.alloc(1024).unwrap();
        let raw = h.raw_offset(small).unwrap();
        h.device().write(raw, b"growing data").unwrap();
        h.device().persist(raw, 12).unwrap();
        // Grow across the boundary: sub-heap block → huge extent.
        let big = h.realloc(small, max + 1).unwrap();
        assert_eq!(big.subheap(), u16::MAX);
        let mut buf = [0u8; 12];
        h.device().read(h.raw_offset(big).unwrap(), &mut buf).unwrap();
        assert_eq!(&buf, b"growing data");
        assert!(matches!(h.free(small), Err(PoseidonError::DoubleFree { .. })));
        // Shrink back: huge extent → sub-heap block.
        let back = h.realloc(big, 1024).unwrap();
        assert_ne!(back.subheap(), u16::MAX);
        h.device().read(h.raw_offset(back).unwrap(), &mut buf).unwrap();
        assert_eq!(&buf, b"growing data");
        h.free(back).unwrap();
        assert_eq!(h.huge_audit().unwrap().unwrap().alloc_extents, 0);
        h.audit().unwrap();
    }

    #[test]
    fn alloc_path_is_o1_validations() {
        // The tentpole's acceptance criterion: a steady-state allocation
        // or free validates the metadata range a constant number of times
        // (one map per operation, plus the rare defrag/shrink scopes),
        // while the number of metadata word accesses it performs is far
        // larger. Warm up first so sub-heap creation costs don't count.
        // Cache off: this test pins the *slow path's* validation budget.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2).without_cache()).unwrap();
        let warm: Vec<_> = (0..16).map(|_| h.alloc(64).unwrap()).collect();
        for p in warm {
            h.free(p).unwrap();
        }
        let before = h.device().stats();
        const N: u64 = 200;
        let ptrs: Vec<_> = (0..N).map(|_| h.alloc(64).unwrap()).collect();
        for p in ptrs {
            h.free(p).unwrap();
        }
        let after = h.device().stats();
        let validations = after.validations - before.validations;
        let word_accesses = (after.read_ops - before.read_ops) + (after.write_ops - before.write_ops);
        // 2N operations; each should cost ~1 validation. Allow slack for
        // occasional defragmentation scopes but stay firmly O(1)/op.
        assert!(validations <= 2 * N + 32, "validations {validations} not O(1) per op");
        assert!(
            word_accesses > validations * 4,
            "word accesses {word_accesses} should dwarf validations {validations}"
        );
    }

    #[test]
    fn fence_budget_per_pair_is_pinned() {
        // Regression pin for the batched commit protocol: a steady-state
        // operation pays exactly three fences (log entries, targets,
        // generation bump) no matter how many words it logs — so an
        // alloc/free pair costs exactly six. Any fence creep on the hot
        // path fails this test. Cache off: the cached fast path does not
        // fence at all, which tests/cache.rs pins separately.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h = PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2).without_cache()).unwrap();
        let warm: Vec<_> = (0..16).map(|_| h.alloc(64).unwrap()).collect();
        for p in warm {
            h.free(p).unwrap();
        }
        let before = h.device().stats();
        const N: u64 = 100;
        for _ in 0..N {
            let p = h.alloc(64).unwrap();
            h.free(p).unwrap();
        }
        let after = h.device().stats();
        let sfences = after.sfence_count - before.sfence_count;
        assert_eq!(sfences, N * 6, "fence budget changed: {sfences} sfences for {N} pairs");
    }

    #[test]
    fn shrink_runs_on_free_not_on_alloc() {
        // Stage an empty-but-active top level by hand (unprotected heap so
        // the test can write metadata directly), then check which paths
        // probe it: the alloc path must leave it alone, the free path must
        // deactivate it.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let h =
            PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2).without_protection().without_cache())
                .unwrap();
        let p = h.alloc(64).unwrap(); // creates sub-heap 0
        let ctx = SubCtx { dev: h.device(), layout: h.layout(), sub: 0 };
        assert_eq!(h.device().read_pod::<u64>(ctx.active_levels_off()).unwrap(), 1);
        h.device().write_pod(ctx.active_levels_off(), &2u64).unwrap();
        h.device().write_pod(ctx.level_count_off(1), &0u64).unwrap();

        let q = h.alloc(64).unwrap();
        assert_eq!(
            h.device().read_pod::<u64>(ctx.active_levels_off()).unwrap(),
            2,
            "alloc path must not probe/shrink the table"
        );
        h.free(q).unwrap();
        assert_eq!(
            h.device().read_pod::<u64>(ctx.active_levels_off()).unwrap(),
            1,
            "free path must deactivate the empty top level"
        );
        h.free(p).unwrap();
        h.audit().unwrap();
    }
}
