//! Per-CPU sub-heap operations (§4.1, §5.2, §5.5).
//!
//! A sub-heap owns a metadata region (header, buddy lists, logs, hash
//! table) and a user region. It is created lazily when the first
//! allocation happens on its CPU, seeded with the maximal power-of-two
//! decomposition of its user region, and placed on that CPU's NUMA node.
//! All mutation goes through the caller's [`OpSession`] — the session
//! owns the sub-heap lock, the MPK write guard, and the *single* mapped
//! metadata view every word access goes through.

use crate::buddy;
use crate::defrag;
use crate::error::{PoseidonError, Result};
use crate::hashtable;
use crate::layout::{class_size, MIN_BLOCK, NUM_CLASSES, SH_UNDO_OFF};
use crate::persist::{state, HashEntry, SubheapHeader, FLAG_CACHED, SUBHEAP_MAGIC};
use crate::session::{OpSession, UndoScope};

/// Initialises (or re-initialises, after a creation that crashed before
/// its directory entry was published) the sub-heap's metadata and seeds
/// its buddy lists. The caller persists the directory entry afterwards;
/// until then the sub-heap is not live.
pub(crate) fn create(op: &OpSession<'_>, node: u32) -> Result<()> {
    let meta = op.ctx.meta_base();
    // Scrub: zero the header/array page(s) and return the log + table
    // space to the device (clears residue from an interrupted creation).
    op.view().write(meta, &vec![0u8; SH_UNDO_OFF as usize])?;
    op.ctx.dev.punch_hole(meta + SH_UNDO_OFF, op.ctx.layout.meta_size - SH_UNDO_OFF)?;
    let header = SubheapHeader {
        magic: SUBHEAP_MAGIC,
        subheap_id: op.ctx.sub as u32,
        node,
        undo_gen: 0,
        micro_count: 0,
        active_levels: 1,
    };
    op.view().write_pod(meta, &header)?;
    op.view().persist(meta, SH_UNDO_OFF)?;

    // Seed the user region: greedy maximal power-of-two decomposition
    // from offset 0. Each seed is automatically aligned to its size
    // (sizes descend), so XOR-buddy arithmetic stays inside each seed.
    let mut scope = op.undo()?;
    let mut offset = 0u64;
    let mut remaining = op.ctx.layout.user_size;
    while remaining >= MIN_BLOCK {
        let size = prev_power_of_two(remaining);
        let mut rec = HashEntry { offset, size, state: state::FREE, ..Default::default() };
        let rec_off = hashtable::insert(op, &mut scope, rec, true)?;
        buddy::push_tail(op, &mut scope, rec_off, &mut rec)?;
        offset += size;
        remaining -= size;
    }
    scope.commit()?;

    // NUMA placement of both regions (§4.1).
    op.ctx.dev.set_page_node(meta, op.ctx.layout.meta_size, node as u8)?;
    op.ctx.dev.set_page_node(op.ctx.user_base(), op.ctx.layout.user_size, node as u8)?;
    Ok(())
}

fn prev_power_of_two(x: u64) -> u64 {
    debug_assert!(x > 0);
    1u64 << (63 - x.leading_zeros())
}

/// Allocates a block of buddy class `class`, following §5.2: find a free
/// block (defragmenting if no class fits), split down to size, and record
/// the allocation — all in one undo scope. Hash-table pressure first
/// triggers probe-window defragmentation, then level activation.
///
/// For transactional allocation (§5.3) pass `micro = Some((heap_id,
/// slot))`: the allocated pointer is appended to the transaction's
/// micro-log slot *inside the same undo scope*, so a crash can never
/// separate the allocation from its log record.
pub(crate) fn alloc_block(op: &OpSession<'_>, class: usize, micro: Option<(u64, usize)>) -> Result<u64> {
    debug_assert!(class < NUM_CLASSES);
    for attempt in 0..3 {
        let from = match buddy::first_class_at_least(op, class)? {
            Some(k) => k,
            None => {
                // §5.4 trigger 1: merge smaller free blocks.
                defrag::merge_all_below(op, class)?;
                match buddy::first_class_at_least(op, class)? {
                    Some(k) => k,
                    None => return Err(PoseidonError::NoSpace { requested: class_size(class) }),
                }
            }
        };
        match try_alloc(op, from, class, attempt > 0, micro) {
            Err(PoseidonError::TableFull) => {
                // §5.4 trigger 2: compact the probe windows of the record
                // keys the split would have inserted, then retry (the
                // retry may also activate a fresh level).
                let head_off = buddy::head(op, from)?;
                if head_off != 0 {
                    let rec = op.entry(head_off)?;
                    let mut size = rec.size;
                    while size > class_size(class) {
                        size /= 2;
                        defrag::compact_windows(op, rec.offset + size)?;
                    }
                }
                continue;
            }
            other => return other,
        }
    }
    Err(PoseidonError::TableFull)
}

/// One allocation attempt: pops the head of `from`, splits down to
/// `want`, marks the final block allocated. Any failure (including
/// hash-table exhaustion mid-split) rolls the scope back.
fn try_alloc(
    op: &OpSession<'_>,
    from: usize,
    want: usize,
    allow_activate: bool,
    micro: Option<(u64, usize)>,
) -> Result<u64> {
    let mut scope = op.undo()?;
    let head_off = buddy::head(op, from)?;
    if head_off == 0 {
        return Err(PoseidonError::Corrupted("free list emptied under the sub-heap lock"));
    }
    let mut rec = op.entry(head_off)?;
    buddy::unlink(op, &mut scope, head_off, &rec)?;
    let mut class = from;
    while class > want {
        class -= 1;
        let half = class_size(class);
        // The upper half becomes a new free block; the lower half
        // continues splitting.
        let mut upper =
            HashEntry { offset: rec.offset + half, size: half, state: state::FREE, ..Default::default() };
        let upper_off = hashtable::insert(op, &mut scope, upper, allow_activate)?;
        buddy::push_tail(op, &mut scope, upper_off, &mut upper)?;
        rec.size = half;
    }
    rec.state = state::ALLOC;
    rec.next_free = 0;
    rec.prev_free = 0;
    hashtable::write_entry(&mut scope, head_off, &rec)?;
    if let Some((heap_id, slot)) = micro {
        let ptr = crate::nvmptr::NvmPtr::new(heap_id, op.ctx.sub, rec.offset);
        crate::microlog::append(op, &mut scope, slot, ptr)?;
    }
    scope.commit()?;
    Ok(rec.offset)
}

/// Outcome of one single-scope refill attempt (see [`refill_blocks`]).
enum RefillAttempt {
    /// Committed; these user-region offsets now carry `FLAG_CACHED`.
    Done(Vec<u64>),
    /// A carve failed mid-split (table pressure); the scope was rolled
    /// back and the first `n` carves are known to succeed — retry with
    /// exactly that many.
    Retry(usize),
}

/// Withdraws up to `want` blocks of buddy class `class` from the
/// persistent free lists into the transient cache, all under **one**
/// two-fence commit: each block is unlinked from its list (splitting
/// larger blocks as needed) and its record stamped `FREE | FLAG_CACHED`
/// with cleared links. Returns the user-region offsets withdrawn —
/// possibly fewer than `want` (free-space or undo-log pressure), possibly
/// none (the caller then falls back to the uncached slow path, which can
/// also defragment and activate levels).
pub(crate) fn refill_blocks(op: &OpSession<'_>, class: usize, want: usize) -> Result<Vec<u64>> {
    debug_assert!(class < NUM_CLASSES);
    let mut target = want;
    loop {
        match try_refill(op, class, target)? {
            RefillAttempt::Done(offsets) => return Ok(offsets),
            RefillAttempt::Retry(0) => return Ok(Vec::new()),
            RefillAttempt::Retry(n) => target = n,
        }
    }
}

/// One refill attempt under a single scope. Carves stop cleanly on
/// free-space or undo-log pressure (committing what fit); a carve that
/// errors *mid-split* dirties the scope, so the whole attempt aborts and
/// reports how many carves are safe to redo.
fn try_refill(op: &OpSession<'_>, class: usize, want: usize) -> Result<RefillAttempt> {
    let mut scope = op.undo()?;
    let mut offsets = Vec::with_capacity(want);
    while offsets.len() < want {
        let Some(from) = buddy::first_class_at_least(op, class)? else { break };
        // Conservative undo-room estimate for this carve: each split
        // touches at most 5 logged ranges of at most 96 bytes (header +
        // one record line), plus the final record and its unlink.
        let estimate = ((from - class) as u64 * 5 + 6) * 96;
        if !scope.has_room_for(estimate) {
            break;
        }
        match carve_cached(op, &mut scope, from, class) {
            Ok(offset) => offsets.push(offset),
            Err(PoseidonError::TableFull) => {
                // Mid-split failure: the scope holds half a carve. Roll
                // everything back and redo only the carves that are known
                // to succeed from the unchanged starting state.
                scope.abort()?;
                return Ok(RefillAttempt::Retry(offsets.len()));
            }
            Err(e) => return Err(e),
        }
    }
    scope.commit()?;
    Ok(RefillAttempt::Done(offsets))
}

/// Pops the head of class `from`, splits down to `want`, and stamps the
/// final block `FREE | FLAG_CACHED` with cleared links — withdrawn from
/// its free list but still free on media. Runs inside the caller's scope.
fn carve_cached(op: &OpSession<'_>, scope: &mut UndoScope<'_, '_>, from: usize, want: usize) -> Result<u64> {
    let head_off = buddy::head(op, from)?;
    if head_off == 0 {
        return Err(PoseidonError::Corrupted("free list emptied under the sub-heap lock"));
    }
    let mut rec = op.entry(head_off)?;
    buddy::unlink(op, scope, head_off, &rec)?;
    let mut class = from;
    while class > want {
        class -= 1;
        let half = class_size(class);
        let mut upper =
            HashEntry { offset: rec.offset + half, size: half, state: state::FREE, ..Default::default() };
        let upper_off = hashtable::insert(op, scope, upper, false)?;
        buddy::push_tail(op, scope, upper_off, &mut upper)?;
        rec.size = half;
    }
    rec.flags |= FLAG_CACHED;
    rec.next_free = 0;
    rec.prev_free = 0;
    hashtable::write_entry(scope, head_off, &rec)?;
    Ok(rec.offset)
}

/// Looks up the record of a cache-managed block and validates its
/// persistent state (`FREE | FLAG_CACHED` — the invariant the cache layer
/// maintains by construction).
fn cached_record(op: &OpSession<'_>, offset: u64) -> Result<(u64, HashEntry)> {
    let Some((rec_off, rec)) = hashtable::lookup(op, offset)? else {
        return Err(PoseidonError::Corrupted("cache-managed block has no record"));
    };
    if rec.state != state::FREE || rec.flags & FLAG_CACHED == 0 {
        return Err(PoseidonError::Corrupted("cache-managed block not FREE+flagged on media"));
    }
    Ok((rec_off, rec))
}

/// Returns cache-resident blocks (user-region `offsets`) to their
/// persistent free lists: clears `FLAG_CACHED` and relinks each record,
/// batching as many as fit per two-fence commit. Blocks whose user bytes
/// picked up media poison while cached are quarantined instead, exactly
/// like a slow-path free; the count of such blocks is returned.
pub(crate) fn drain_blocks(op: &OpSession<'_>, offsets: &[u64]) -> Result<u64> {
    let mut quarantined = 0u64;
    let mut scope = op.undo()?;
    for &offset in offsets {
        if !scope.has_room_for(6 * 96) {
            scope.commit()?;
            scope = op.undo()?;
        }
        let (rec_off, mut rec) = cached_record(op, offset)?;
        rec.flags &= !FLAG_CACHED;
        if op.ctx.dev.is_poisoned(op.ctx.user_base() + rec.offset, rec.size) {
            rec.state = state::QUARANTINED;
            rec.next_free = 0;
            rec.prev_free = 0;
            hashtable::write_entry(&mut scope, rec_off, &rec)?;
            quarantined += 1;
        } else {
            buddy::push_tail(op, &mut scope, rec_off, &mut rec)?;
        }
    }
    scope.commit()?;
    Ok(quarantined)
}

/// Persistently publishes cache-managed blocks (user-region `offsets`) as
/// allocated: state `ALLOC`, flag cleared — the durability hand-off run
/// when the application makes cached allocations reachable (`set_root`)
/// or on clean close. Batches as many as fit per two-fence commit.
pub(crate) fn publish_blocks(op: &OpSession<'_>, offsets: &[u64]) -> Result<()> {
    let mut scope = op.undo()?;
    for &offset in offsets {
        if !scope.has_room_for(2 * 96) {
            scope.commit()?;
            scope = op.undo()?;
        }
        let (rec_off, mut rec) = cached_record(op, offset)?;
        rec.state = state::ALLOC;
        rec.flags &= !FLAG_CACHED;
        rec.next_free = 0;
        rec.prev_free = 0;
        hashtable::write_entry(&mut scope, rec_off, &rec)?;
    }
    scope.commit()?;
    Ok(())
}

/// Load-time reconciliation: relinks every record the transient cache had
/// withdrawn (`FREE | FLAG_CACHED`) when the previous session ended. The
/// cache is DRAM-only, so whatever it held simply becomes free capacity
/// again — cached allocations that were never published evaporate, which
/// is the documented crash contract. Idempotent: a crash mid-pass leaves
/// a strict subset flagged and the next load finishes the job. Returns
/// the number of blocks relinked.
pub(crate) fn reclaim_cached(op: &OpSession<'_>) -> Result<u64> {
    let active = (op.active_levels()? as usize).min(crate::layout::MAX_LEVELS);
    let mut reclaimed = 0u64;
    let mut scope = op.undo()?;
    for level in 0..active {
        let base = op.ctx.layout.level_base(op.ctx.sub, level);
        for i in 0..op.ctx.layout.level_capacity(level) {
            let rec_off = base + i * crate::layout::ENTRY_SIZE;
            let mut rec = op.entry(rec_off)?;
            if rec.state != state::FREE || rec.flags & FLAG_CACHED == 0 {
                continue;
            }
            if !scope.has_room_for(6 * 96) {
                scope.commit()?;
                scope = op.undo()?;
            }
            rec.flags &= !FLAG_CACHED;
            buddy::push_tail(op, &mut scope, rec_off, &mut rec)?;
            reclaimed += 1;
        }
    }
    scope.commit()?;
    Ok(reclaimed)
}

/// What [`free_block`] did with the block, so callers can keep the
/// heap-level quarantine accounting balanced (the hash-table record is
/// the durable truth; the [`crate::selfheal`] counters are volatile and
/// must be bumped by whoever drove the free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FreeOutcome {
    /// The freed (or quarantined) block's size in bytes.
    pub size: u64,
    /// True when the block was routed to quarantine instead of its
    /// free list because its user bytes overlap poisoned media.
    pub quarantined: bool,
}

/// Frees the block at user-region offset `offset`, validating the request
/// against the hash table first (§4.7): unknown offsets are invalid
/// frees, already-free blocks are double frees — both rejected without
/// touching metadata. A block whose user bytes overlap a poisoned line is
/// quarantined instead of returned to its free list, so the media error
/// can never be handed to a future allocation. Returns the freed block's
/// size and whether it was quarantined.
pub(crate) fn free_block(op: &OpSession<'_>, offset: u64) -> Result<FreeOutcome> {
    let Some((rec_off, mut rec)) = hashtable::lookup(op, offset)? else {
        return Err(PoseidonError::InvalidFree { offset });
    };
    match rec.state {
        state::ALLOC => {}
        state::FREE => return Err(PoseidonError::DoubleFree { offset }),
        _ => return Err(PoseidonError::InvalidFree { offset }),
    }
    let mut scope = op.undo()?;
    let quarantined = op.ctx.dev.is_poisoned(op.ctx.user_base() + rec.offset, rec.size);
    if quarantined {
        rec.state = state::QUARANTINED;
        rec.next_free = 0;
        rec.prev_free = 0;
        hashtable::write_entry(&mut scope, rec_off, &rec)?;
    } else {
        rec.state = state::FREE;
        buddy::push_tail(op, &mut scope, rec_off, &mut rec)?;
    }
    scope.commit()?;
    Ok(FreeOutcome { size: rec.size, quarantined })
}

/// A consistency report produced by the heap audit
/// ([`PoseidonHeap::audit`](crate::PoseidonHeap::audit)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubheapAudit {
    /// Number of live (FREE, ALLOC, or QUARANTINED) records.
    pub blocks: u64,
    /// Bytes covered by free blocks.
    pub free_bytes: u64,
    /// Bytes covered by allocated blocks.
    pub alloc_bytes: u64,
    /// Number of allocated blocks.
    pub alloc_blocks: u64,
    /// Active hash-table levels.
    pub active_levels: u64,
    /// Tombstoned (merged-away) records awaiting slot reuse.
    pub tombstones: u64,
    /// Blocks quarantined after media errors (neither free nor
    /// allocatable).
    pub quarantined_blocks: u64,
    /// Bytes covered by quarantined blocks.
    pub quarantined_bytes: u64,
    /// Free blocks per buddy size class (class `k` = `32 << k` bytes).
    pub free_by_class: [u64; NUM_CLASSES],
}

impl Default for SubheapAudit {
    fn default() -> Self {
        SubheapAudit {
            blocks: 0,
            free_bytes: 0,
            alloc_bytes: 0,
            alloc_blocks: 0,
            active_levels: 0,
            tombstones: 0,
            quarantined_blocks: 0,
            quarantined_bytes: 0,
            free_by_class: [0; NUM_CLASSES],
        }
    }
}

impl SubheapAudit {
    /// Largest currently-free block, in bytes (0 when nothing is free).
    pub fn largest_free_block(&self) -> u64 {
        self.free_by_class
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &count)| count > 0)
            .map_or(0, |(class, _)| crate::layout::class_size(class))
    }

    /// External fragmentation in [0, 1]: one minus the fraction of free
    /// bytes usable by a single largest-block allocation.
    pub fn fragmentation(&self) -> f64 {
        if self.free_bytes == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / self.free_bytes as f64
    }
}

/// How the transient cache layer accounts one cache-flagged record
/// during an audit (see [`audit_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheResidency {
    /// Not cache-managed. A record carrying `FLAG_CACHED` with this
    /// residency is a corruption — the flag and the DRAM map are updated
    /// together under the sub-heap lock the audit also holds.
    None,
    /// Sitting in a magazine or transfer pool: free capacity.
    Resident,
    /// Handed out to the application by the cached fast path: allocated.
    CheckedOut,
}

/// Walks the whole sub-heap and checks every structural invariant:
/// power-of-two aligned non-overlapping blocks covering the seeded area,
/// free lists exactly matching FREE records, and level counts matching
/// live entries. Used by tests and property checks.
///
/// Cache-flagged records are classified through `residency` (the heap
/// passes its DRAM residency map): `Resident` counts as free capacity,
/// `CheckedOut` as allocated, and `None` — a flag with no cache entry —
/// is a corruption. Flagged records must never be linked into a free
/// list.
///
/// # Errors
///
/// [`PoseidonError::Corrupted`] describing the first violated invariant.
pub(crate) fn audit_with(
    op: &OpSession<'_>,
    residency: impl Fn(u64) -> CacheResidency,
) -> Result<SubheapAudit> {
    use std::collections::{BTreeMap, HashSet};
    let active = op.active_levels()? as usize;
    let mut by_offset: BTreeMap<u64, HashEntry> = BTreeMap::new();
    let mut slot_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut tombstones = 0u64;
    for level in 0..active.min(crate::layout::MAX_LEVELS) {
        let mut live = 0u64;
        let mut sum = 0u64;
        let base = op.ctx.layout.level_base(op.ctx.sub, level);
        for i in 0..op.ctx.layout.level_capacity(level) {
            let off = base + i * crate::layout::ENTRY_SIZE;
            let e = op.entry(off)?;
            if e.state == state::TOMBSTONE {
                tombstones += 1;
            }
            if e.state == state::FREE || e.state == state::ALLOC || e.state == state::QUARANTINED {
                live += 1;
                sum ^= hashtable::key_digest(e.offset);
                if !e.size.is_power_of_two() || e.size < MIN_BLOCK {
                    return Err(PoseidonError::Corrupted("block size not a power of two"));
                }
                if e.offset % e.size != 0 {
                    return Err(PoseidonError::Corrupted("block not aligned to its size"));
                }
                if by_offset.insert(e.offset, e).is_some() {
                    return Err(PoseidonError::Corrupted("duplicate block offset in table"));
                }
                slot_of.insert(e.offset, off);
            }
        }
        let counted: u64 = op.read_pod(op.ctx.level_count_off(level))?;
        if counted != live {
            return Err(PoseidonError::Corrupted("level live count mismatch"));
        }
        // The identity checksum is an independent witness for the count:
        // a zeroed count over a zeroed level passes the check above, but
        // only a level that truly never held these records XORs to the
        // stored sum.
        let stored: u64 = op.read_pod(op.ctx.level_sum_off(level))?;
        if stored != sum {
            return Err(PoseidonError::Corrupted("level identity checksum mismatch"));
        }
    }
    // Non-overlap and bounds.
    let mut audit_out = SubheapAudit { active_levels: active as u64, tombstones, ..Default::default() };
    let mut cursor = 0u64;
    for (&off, e) in &by_offset {
        if off < cursor {
            return Err(PoseidonError::Corrupted("overlapping blocks"));
        }
        if off + e.size > op.ctx.layout.user_size {
            return Err(PoseidonError::Corrupted("block beyond user region"));
        }
        cursor = off + e.size;
        audit_out.blocks += 1;
        if e.flags & FLAG_CACHED != 0 {
            // Cache-managed: on media always FREE (that is the crash
            // contract), accounted by what the DRAM layer says.
            if e.state != state::FREE {
                return Err(PoseidonError::Corrupted("cache flag on a non-free record"));
            }
            match residency(e.offset) {
                CacheResidency::Resident => {
                    audit_out.free_bytes += e.size;
                    audit_out.free_by_class[crate::layout::class_for_size(e.size)?.0] += 1;
                }
                CacheResidency::CheckedOut => {
                    audit_out.alloc_bytes += e.size;
                    audit_out.alloc_blocks += 1;
                }
                CacheResidency::None => {
                    return Err(PoseidonError::Corrupted("cache-flagged record unknown to the cache"));
                }
            }
            continue;
        }
        match e.state {
            state::FREE => {
                audit_out.free_bytes += e.size;
                audit_out.free_by_class[crate::layout::class_for_size(e.size)?.0] += 1;
            }
            state::QUARANTINED => {
                audit_out.quarantined_bytes += e.size;
                audit_out.quarantined_blocks += 1;
            }
            _ => {
                audit_out.alloc_bytes += e.size;
                audit_out.alloc_blocks += 1;
            }
        }
    }
    // Free lists contain exactly the unflagged FREE records, each once,
    // in the right class. Cache-managed records are withdrawn from the
    // lists by construction — one linked anyway is a corruption.
    let mut listed: HashSet<u64> = HashSet::new();
    for class in 0..NUM_CLASSES {
        for rec_off in buddy::collect(op, class)? {
            let e = op.entry(rec_off)?;
            if e.state != state::FREE {
                return Err(PoseidonError::Corrupted("non-free record in free list"));
            }
            if e.flags & FLAG_CACHED != 0 {
                return Err(PoseidonError::Corrupted("cache-managed record linked in a free list"));
            }
            if crate::layout::class_for_size(e.size)?.0 != class {
                return Err(PoseidonError::Corrupted("record in wrong size class list"));
            }
            if !listed.insert(rec_off) {
                return Err(PoseidonError::Corrupted("record linked twice"));
            }
        }
    }
    let free_records =
        by_offset.values().filter(|e| e.state == state::FREE && e.flags & FLAG_CACHED == 0).count();
    if free_records != listed.len() {
        return Err(PoseidonError::Corrupted("free record not reachable from any free list"));
    }
    Ok(audit_out)
}

/// [`audit_with`] for contexts with no live cache (module tests, offline
/// repair): any cache-flagged record is a corruption.
pub(crate) fn audit(op: &OpSession<'_>) -> Result<SubheapAudit> {
    audit_with(op, |_| CacheResidency::None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{class_for_size, HeapLayout};
    use crate::persist::SubCtx;
    use pmem::{DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        (dev, layout)
    }

    fn op_for<'a>(dev: &'a PmemDevice, layout: &'a HeapLayout) -> OpSession<'a> {
        OpSession::unguarded(SubCtx { dev, layout, sub: 0 }).unwrap()
    }

    #[test]
    fn create_seeds_full_coverage() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.alloc_bytes, 0);
        // Seeds cover the user region down to MIN_BLOCK granularity.
        assert!(a.free_bytes <= layout.user_size);
        assert!(layout.user_size - a.free_bytes < MIN_BLOCK);
    }

    #[test]
    fn create_is_idempotent_after_partial_creation() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        // Dirty the table, then recreate (models a crash before the
        // directory entry was published, followed by a fresh creation).
        create(&op, 1).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.alloc_bytes, 0);
        assert_eq!(op.header().unwrap().node, 1);
    }

    #[test]
    fn alloc_splits_down_and_free_restores() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let before = audit(&op).unwrap();
        let (class, size) = class_for_size(100).unwrap();
        let off = alloc_block(&op, class, None).unwrap();
        assert_eq!(size, 128);
        let mid = audit(&op).unwrap();
        assert_eq!(mid.alloc_bytes, 128);
        assert_eq!(mid.free_bytes + 128, before.free_bytes);
        assert_eq!(free_block(&op, off).unwrap().size, 128);
        let after = audit(&op).unwrap();
        assert_eq!(after.alloc_bytes, 0);
        assert_eq!(after.free_bytes, before.free_bytes);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, size) = class_for_size(64).unwrap();
        let mut offs = std::collections::HashSet::new();
        for _ in 0..100 {
            let off = alloc_block(&op, class, None).unwrap();
            assert!(offs.insert(off), "offset {off} handed out twice");
            assert_eq!(off % size, 0);
        }
        audit(&op).unwrap();
    }

    #[test]
    fn free_then_realloc_reuses_space_eventually() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, _) = class_for_size(4096).unwrap();
        let a = alloc_block(&op, class, None).unwrap();
        free_block(&op, a).unwrap();
        // Tail insertion delays reuse, but allocating everything must
        // eventually hand `a` back without corruption.
        let mut seen = false;
        for _ in 0..10_000 {
            match alloc_block(&op, class, None) {
                Ok(off) => {
                    if off == a {
                        seen = true;
                        break;
                    }
                }
                Err(PoseidonError::NoSpace { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(seen, "freed block never reused");
    }

    #[test]
    fn invalid_and_double_frees_are_rejected() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, _) = class_for_size(64).unwrap();
        let off = alloc_block(&op, class, None).unwrap();
        assert!(matches!(free_block(&op, off + 8), Err(PoseidonError::InvalidFree { .. })));
        free_block(&op, off).unwrap();
        assert!(matches!(free_block(&op, off), Err(PoseidonError::DoubleFree { .. })));
        // The heap is still intact.
        audit(&op).unwrap();
    }

    #[test]
    fn freeing_a_poisoned_block_quarantines_it() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, size) = class_for_size(64).unwrap();
        let off = alloc_block(&op, class, None).unwrap();
        dev.poison(op.ctx.user_base() + off, 1).unwrap();
        // The free "succeeds" — the block leaves the allocated population —
        // but lands in quarantine, not on a free list.
        assert_eq!(free_block(&op, off).unwrap().size, size);
        assert!(matches!(free_block(&op, off), Err(PoseidonError::InvalidFree { .. })));
        let report = audit(&op).unwrap();
        assert_eq!(report.quarantined_blocks, 1);
        assert_eq!(report.quarantined_bytes, size);
        assert_eq!(report.alloc_blocks, 0);
    }

    #[test]
    fn exhaustion_defragments_then_reports_no_space() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        // Allocate the maximum class until exhaustion.
        let max = layout.max_alloc();
        let (class, _) = class_for_size(max).unwrap();
        let mut blocks = Vec::new();
        loop {
            match alloc_block(&op, class, None) {
                Ok(off) => blocks.push(off),
                Err(PoseidonError::NoSpace { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(!blocks.is_empty());
        // Free everything; defragmentation must reassemble the big block.
        for off in blocks.drain(..) {
            free_block(&op, off).unwrap();
        }
        let off = alloc_block(&op, class, None).expect("defrag must reassemble the largest block");
        free_block(&op, off).unwrap();
        audit(&op).unwrap();
    }

    #[test]
    fn refill_withdraws_blocks_under_one_commit() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let before = audit(&op).unwrap();
        let (class, size) = class_for_size(64).unwrap();
        // The session's view buffers fence counts until it drops; give the
        // refill its own session so the device stats reflect exactly it.
        drop(op);

        let fences0 = dev.stats().sfence_count;
        let op = op_for(&dev, &layout);
        let offsets = refill_blocks(&op, class, 8).unwrap();
        assert_eq!(offsets.len(), 8);
        drop(op);
        // One two-fence commit (3 sfences with the generation bump) for
        // the whole batch — the amortised budget the cache layer buys.
        assert_eq!(dev.stats().sfence_count - fences0, 3);
        let op = op_for(&dev, &layout);

        // Flagged records are invisible to the cacheless audit...
        assert!(matches!(audit(&op), Err(PoseidonError::Corrupted(_))));
        // ...and count as free capacity when the cache owns them.
        let resident: std::collections::HashSet<u64> = offsets.iter().copied().collect();
        let a = audit_with(&op, |off| {
            if resident.contains(&off) {
                CacheResidency::Resident
            } else {
                CacheResidency::None
            }
        })
        .unwrap();
        assert_eq!(a.free_bytes, before.free_bytes);
        assert_eq!(a.alloc_bytes, 0);

        // The slow path cannot hand a withdrawn block out again.
        let mut slow = std::collections::HashSet::new();
        for _ in 0..64 {
            slow.insert(alloc_block(&op, class, None).unwrap());
        }
        assert!(slow.is_disjoint(&resident), "slow path re-allocated a cache-withdrawn block");
        for off in slow {
            free_block(&op, off).unwrap();
        }

        // Drain restores the exact pre-refill audit.
        assert_eq!(drain_blocks(&op, &offsets).unwrap(), 0);
        let after = audit(&op).unwrap();
        assert_eq!(after.free_bytes, before.free_bytes);
        let _ = size;
    }

    #[test]
    fn publish_turns_cached_blocks_into_real_allocations() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, size) = class_for_size(256).unwrap();
        let offsets = refill_blocks(&op, class, 4).unwrap();
        assert_eq!(offsets.len(), 4);
        publish_blocks(&op, &offsets).unwrap();
        let a = audit(&op).unwrap();
        assert_eq!(a.alloc_bytes, 4 * size);
        // Published blocks free (and double-free-check) like any other.
        for off in &offsets {
            assert_eq!(free_block(&op, *off).unwrap().size, size);
        }
        assert!(matches!(free_block(&op, offsets[0]), Err(PoseidonError::DoubleFree { .. })));
        assert_eq!(audit(&op).unwrap().alloc_bytes, 0);
    }

    #[test]
    fn draining_a_poisoned_cached_block_quarantines_it() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, size) = class_for_size(64).unwrap();
        let offsets = refill_blocks(&op, class, 2).unwrap();
        dev.poison(op.ctx.user_base() + offsets[0], 1).unwrap();
        assert_eq!(drain_blocks(&op, &offsets).unwrap(), 1);
        let a = audit(&op).unwrap();
        assert_eq!(a.quarantined_blocks, 1);
        assert_eq!(a.quarantined_bytes, size);
    }

    #[test]
    fn refill_survives_free_space_exhaustion() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        // Ask for far more than the sub-heap holds: partial success, and
        // everything handed out is distinct.
        let (class, _) = class_for_size(layout.max_alloc()).unwrap();
        let offsets = refill_blocks(&op, class, 1_000_000).unwrap();
        assert!(!offsets.is_empty());
        let unique: std::collections::HashSet<_> = offsets.iter().collect();
        assert_eq!(unique.len(), offsets.len());
        drain_blocks(&op, &offsets).unwrap();
        audit(&op).unwrap();
    }

    #[test]
    fn many_small_allocations_grow_the_table() {
        let (dev, layout) = setup();
        let op = op_for(&dev, &layout);
        create(&op, 0).unwrap();
        let (class, _) = class_for_size(32).unwrap();
        let n = layout.c0 * 2;
        let mut offs = Vec::new();
        for _ in 0..n {
            offs.push(alloc_block(&op, class, None).unwrap());
        }
        assert!(op.active_levels().unwrap() > 1, "expected level growth");
        audit(&op).unwrap();
        for off in offs {
            free_block(&op, off).unwrap();
        }
        audit(&op).unwrap();
    }
}
