//! Property tests for Poseidon's core structures: model-based checks of
//! the heap against a shadow allocator, including buddy conservation and
//! size-class correctness.

use std::collections::HashMap;
use std::sync::Arc;

use platform::check::{check, Config};
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{class_for_size, HeapConfig, NvmPtr, PoseidonError, PoseidonHeap, MIN_BLOCK};

fn heap() -> PoseidonHeap {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(48 << 20)));
    PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap()
}

#[test]
fn blocks_are_class_sized_and_aligned() {
    check("blocks_are_class_sized_and_aligned", Config::cases(40), |g| {
        let sizes = g.vec(1..60, |g| g.u64(1..100_000));
        let heap = heap();
        let mut live: Vec<(NvmPtr, u64)> = Vec::new();
        for size in sizes {
            match heap.alloc(size) {
                Ok(p) => {
                    let (_, rounded) = class_for_size(size).unwrap();
                    assert_eq!(p.offset() % rounded, 0, "block not aligned to its class");
                    live.push((p, rounded));
                }
                Err(PoseidonError::NoSpace { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        // Distinct, non-overlapping (sorted by offset).
        live.sort_by_key(|(p, _)| p.offset());
        for pair in live.windows(2) {
            assert!(pair[0].0.offset() + pair[0].1 <= pair[1].0.offset());
        }
        for (p, _) in live {
            heap.free(p).unwrap();
        }
        heap.audit().unwrap();
    });
}

#[test]
fn free_bytes_are_conserved() {
    check("free_bytes_are_conserved", Config::cases(40), |g| {
        let ops = g.vec(1..80, |g| (g.u64(1..16_384), g.bool()));
        let heap = heap();
        // Prime the sub-heap, then capture the baseline.
        let warm = heap.alloc(32).unwrap();
        heap.free(warm).unwrap();
        let baseline: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.free_bytes + a.alloc_bytes).sum();

        let mut live: Vec<NvmPtr> = Vec::new();
        let mut rng_index = 0usize;
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                rng_index = (rng_index * 31 + 7) % live.len();
                let p = live.swap_remove(rng_index);
                heap.free(p).unwrap();
            } else if let Ok(p) = heap.alloc(size) {
                live.push(p);
            }
            // Invariant after *every* operation: total tracked bytes never
            // change (blocks only split and merge).
            let audits = heap.audit().unwrap();
            let total: u64 = audits.iter().map(|(_, a)| a.free_bytes + a.alloc_bytes).sum();
            assert_eq!(total, baseline, "byte conservation violated");
        }
        for p in live {
            heap.free(p).unwrap();
        }
    });
}

#[test]
fn shadow_model_agreement() {
    check("shadow_model_agreement", Config::cases(40), |g| {
        let plan = g.vec(1..100, |g| (g.u64(1..8_192), g.usize(0..8)));
        // A shadow allocator that only tracks {ptr -> size}: Poseidon must
        // agree on every outcome (alloc succeeds while space remains;
        // freeing live succeeds once; freeing again fails).
        let heap = heap();
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for (size, action) in plan {
            if action < 5 {
                if let Ok(p) = heap.alloc(size) {
                    let prev = shadow.insert(p.offset(), size);
                    assert!(prev.is_none(), "allocator returned a live offset");
                }
            } else if let Some(&offset) = shadow.keys().next() {
                shadow.remove(&offset);
                let ptr = NvmPtr::new(heap.heap_id(), 0, offset);
                heap.free(ptr).unwrap();
                // Second free must be rejected.
                let double = matches!(heap.free(ptr), Err(PoseidonError::DoubleFree { .. }));
                assert!(double, "second free not rejected");
            }
        }
        heap.audit().unwrap();
    });
}

#[test]
fn min_block_rounding_is_tight() {
    check("min_block_rounding_is_tight", Config::cases(40), |g| {
        let size = g.u64(1..1_000_000);
        let (_class, rounded) = class_for_size(size).unwrap();
        assert!(rounded >= size);
        assert!(rounded >= MIN_BLOCK);
        assert!(rounded.is_power_of_two());
        // Tight: half of it would not fit (unless clamped at MIN_BLOCK).
        assert!(rounded == MIN_BLOCK || rounded / 2 < size);
    });
}

#[test]
fn tx_commit_and_abort_are_exact() {
    check("tx_commit_and_abort_are_exact", Config::cases(40), |g| {
        let batches = g.vec(1..20, |g| (g.u64(1..512), g.bool()));
        let heap = heap();
        let mut committed: Vec<NvmPtr> = Vec::new();
        for (size, commit) in batches {
            let a = heap.tx_alloc(size, false).unwrap();
            let b = heap.tx_alloc(size, commit).unwrap();
            if commit {
                committed.push(a);
                committed.push(b);
            } else {
                heap.tx_abort().unwrap();
                // Aborted allocations are gone: freeing them is rejected.
                let gone_a = matches!(heap.free(a), Err(PoseidonError::DoubleFree { .. }));
                let gone_b = matches!(heap.free(b), Err(PoseidonError::DoubleFree { .. }));
                assert!(gone_a && gone_b, "aborted tx allocations still live");
            }
        }
        for p in committed {
            heap.free(p).unwrap();
        }
        let audits = heap.audit().unwrap();
        for (_, a) in audits {
            assert_eq!(a.alloc_bytes, 0);
        }
    });
}
