//! The Figure 3 experiments as a runnable demo: the same heap-overflow
//! bug against PMDK-sim (silent corruption and permanent leaks), Makalu's
//! GC (silent data loss), and Poseidon (every attack rejected).
//!
//! ```text
//! cargo run --example safety_demo
//! ```

use std::sync::Arc;

use baselines::pmdk_sim::{ObjHeader, STATUS_ALLOC};
use baselines::{MakaluSim, PmdkSim};
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Figure 3, left: overlapping allocation (PMDK) ===");
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
        let pool = PmdkSim::new(dev.clone())?;
        // Fill a run with 64-byte objects.
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(pool.alloc(0, 48)?);
        }
        let victim = live[32];
        // The program bug: a heap overflow rewrites the in-place header
        // (line 16 of the paper's listing: `*(free - 16) = 1088`).
        dev.write_pod(victim - 16, &ObjHeader { size: 1088, status: STATUS_ALLOC })?;
        pool.free(0, victim)?;
        // The allocator now believes 17 units are free; 16 are still live.
        let mut overlapping = Vec::new();
        for _ in 0..17 {
            let fresh = pool.alloc(0, 48)?;
            if live.contains(&fresh) && fresh != victim {
                overlapping.push(fresh);
            }
        }
        println!(
            "  {} fresh allocations alias still-live objects — writes through them\n  silently corrupt user data (the paper's line 28 assert would fail)",
            overlapping.len()
        );
        assert!(!overlapping.is_empty());
    }

    println!("\n=== Section 8 mitigation: the same attack vs PMDK-with-canary ===");
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
        let pool = PmdkSim::with_canary(dev.clone())?;
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(pool.alloc(0, 48)?);
        }
        let victim = live[32];
        dev.write_pod(victim - 16, &ObjHeader { size: 1088, status: STATUS_ALLOC })?;
        pool.free(0, victim)?; // canary mismatch: silently skipped
        let mut overlapping = 0;
        for _ in 0..17 {
            let fresh = pool.alloc(0, 48)?;
            if live.contains(&fresh) && fresh != victim {
                overlapping += 1;
            }
        }
        println!(
            "  {} overlapping allocations; {} free skipped by the canary check\n  (the object is leaked instead — \"mitigates the side effect\" but \"neither\n  guarantees metadata protection nor prevents persistent memory leak\")",
            overlapping,
            pool.skipped_frees()
        );
        assert_eq!(overlapping, 0);
    }

    println!("\n=== Figure 3, right: permanent leak (PMDK) ===");
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
        let pool = PmdkSim::new(dev.clone())?;
        let before = pool.free_chunks();
        let big = pool.alloc(0, 2 * 1024 * 1024)?;
        // Corrupt the header to a smaller size before freeing (line 46).
        dev.write_pod(big - 16, &ObjHeader { size: 64, status: STATUS_ALLOC })?;
        pool.free(0, big)?;
        let leaked = before - pool.free_chunks();
        println!("  {leaked} chunks ({} KiB) can never be allocated again — a permanent leak", leaked * 256);
        assert!(leaked > 0);
    }

    println!("\n=== Makalu: reachability-based GC vs a corrupted pointer ===");
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
        let pool = MakaluSim::new(dev.clone())?;
        let root = pool.alloc(0, 64)?;
        let middle = pool.alloc(0, 64)?;
        let leaf = pool.alloc(0, 64)?;
        dev.write_pod(root, &middle)?;
        dev.write_pod(middle, &leaf)?;
        assert_eq!(pool.gc(&[root])?, 0); // intact graph: nothing swept
        dev.write_pod(root, &0u64)?; // the bug: one pointer zeroed
        let swept = pool.gc(&[root])?;
        println!("  GC swept {swept} still-wanted objects after one corrupted pointer — silent data loss");
        assert_eq!(swept, 2);
    }

    println!("\n=== Poseidon: the same bugs, stopped ===");
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20)));
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2))?;
        let ptr = heap.alloc(64)?;

        // 1. There is no in-place header: the bytes in front of user data
        //    are MPK-protected metadata. The overflowing store faults.
        let overflow = dev.write(heap.layout().user_base(0) - 8, &[0xFF; 16]);
        println!("  heap overflow into metadata -> {}", overflow.unwrap_err());

        // 2. Direct metadata corruption (the bitmap attack): also faults.
        let direct = dev.write(heap.layout().meta_base(0) + 0x100, &[0xFF; 8]);
        println!("  direct metadata store       -> {}", direct.unwrap_err());

        // 3. Invalid free of a forged pointer: validated against the
        //    block table and rejected.
        let forged = NvmPtr::new(heap.heap_id(), 0, ptr.offset() + 8);
        let invalid = heap.free(forged);
        println!("  free(forged pointer)        -> {}", invalid.unwrap_err());

        // 4. Double free: rejected.
        heap.free(ptr)?;
        let double = heap.free(ptr);
        println!("  double free                 -> {}", double.unwrap_err());
        assert!(matches!(double, Err(PoseidonError::DoubleFree { .. })));

        // And the heap is structurally intact.
        heap.audit()?;
        println!("  structural audit: clean — no attack touched the metadata");
        println!("  (MPK denied {} accesses in total)", dev.mpk().stats().violations);
    }

    println!("\nsafety_demo complete");
    Ok(())
}
