//! The paper's §2.2 scenario, end to end: "Suppose that memory P and Q
//! are allocated and then a crash happens before the transaction is
//! persistently committed. The allocations of P and Q must be reverted,
//! otherwise P and Q will be permanently leaked."
//!
//! A tiny persistent bank: accounts live in a persistent map, and every
//! transfer is **one** `ptx` transaction touching two balances. The demo
//! injects device crashes at arbitrary moments and shows that after every
//! recovery the total balance is conserved — no transfer ever applies
//! half, and no crashed transaction leaks its allocations.
//!
//! ```text
//! cargo run --release --example bank_transfer
//! ```

use std::sync::Arc;

use pds::PMap;
use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use ptx::{PtxError, PtxPool};

const HOLDERS: u64 = 8;
const OPENING: u64 = 1_000;
const ROUNDS: u64 = 1_500;

fn total_balance(pool: &PtxPool, accounts: &PMap<u64>) -> u64 {
    (0..HOLDERS).map(|id| accounts.get(pool, id).unwrap().unwrap_or(0)).sum()
}

/// One atomic transfer: both balances change in a single transaction.
fn transfer(pool: &PtxPool, accounts: &PMap<u64>, from: u64, to: u64, amount: u64) -> Result<(), PtxError> {
    pool.run(|tx| {
        let from_balance = accounts.get_in(tx, from)?.expect("payer exists");
        let to_balance = accounts.get_in(tx, to)?.expect("payee exists");
        if from_balance < amount {
            return Err(PtxError::Aborted(format!("account {from} has only {from_balance}")));
        }
        accounts.insert_in(tx, from, from_balance - amount)?;
        accounts.insert_in(tx, to, to_balance + amount)?;
        Ok(())
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
    let heap = Arc::new(PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2))?);
    let mut pool = PtxPool::create(heap)?;

    // Open the bank: fund every account.
    let mut accounts: PMap<u64> = PMap::create(&pool, 16)?;
    pool.run(|tx| tx.set_root(accounts.handle()))?;
    for id in 0..HOLDERS {
        accounts.insert(&pool, id, OPENING)?;
    }
    println!("bank open: {HOLDERS} accounts x {OPENING} = {} total", HOLDERS * OPENING);
    println!("running {ROUNDS} random transfers with periodic crash injection...\n");

    let mut state = 0x5EEDu64;
    let mut completed = 0u64;
    let mut declined = 0u64;
    let mut crashes = 0u64;
    let mut round = 0u64;
    while round < ROUNDS {
        round += 1;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let from = state % HOLDERS;
        let to = (state >> 8) % HOLDERS;
        let amount = state % 150;
        if from == to {
            continue;
        }
        // Every so often, let the power fail somewhere inside the
        // transfer's transaction.
        let armed = round.is_multiple_of(111);
        if armed {
            dev.arm_crash_after(10 + state % 80);
        }
        match transfer(&pool, &accounts, from, to, amount) {
            Ok(()) => completed += 1,
            Err(PtxError::Aborted(_)) => declined += 1,
            Err(_) => {
                // The injected crash fired mid-transaction: power-cycle,
                // recover, and verify conservation.
                crashes += 1;
                dev.disarm_crash();
                dev.simulate_crash(CrashMode::Strict, state);
                let heap = Arc::new(PoseidonHeap::load(dev.clone(), HeapConfig::new())?);
                pool = PtxPool::open(heap)?;
                accounts = PMap::open(pool.root()?);
                let total = total_balance(&pool, &accounts);
                assert_eq!(total, HOLDERS * OPENING, "crash at round {round} tore a transfer: total {total}");
                println!(
                    "  crash #{crashes} at round {round}: recovered ({:?}), total still {total}",
                    pool.recovery_report()
                );
            }
        }
        if armed {
            dev.disarm_crash();
        }
    }

    let total = total_balance(&pool, &accounts);
    println!("\ncompleted {completed} transfers ({declined} declined), survived {crashes} crashes");
    println!("final total: {total} (expected {})", HOLDERS * OPENING);
    assert_eq!(total, HOLDERS * OPENING, "money was created or destroyed!");
    pool.heap().audit()?;
    println!("heap audit clean — bank_transfer complete, conservation of money held");
    Ok(())
}
