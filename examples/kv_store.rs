//! A persistent key-value store: the FAST-FAIR-style B+-tree over a
//! Poseidon heap, with the tree root anchored in the heap's root pointer
//! so the store survives restarts (the §7.5 application, end to end).
//!
//! ```text
//! cargo run --example kv_store
//! ```

use std::sync::Arc;

use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::fastfair::FastFair;
use workloads::PersistentAllocator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(512 << 20)));
    let heap = Arc::new(PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(4))?);

    // Build the index; all nodes and values live in the Poseidon heap.
    let tree = FastFair::new(heap.clone())?;

    println!("inserting 10,000 key-value pairs...");
    for key in 0..10_000u64 {
        // Value: a 100-byte persistent buffer holding a little document.
        let value = PersistentAllocator::alloc(&*heap, 100)?;
        dev.write_pod(value, &(key * key))?;
        dev.persist(value, 8)?;
        tree.insert(key, value)?;
    }
    println!("tree holds {} keys", tree.len());

    // Point lookups.
    for probe in [0u64, 4_242, 9_999] {
        let value = tree.get(probe).expect("inserted key");
        let doc: u64 = dev.read_pod(value)?;
        println!("get({probe}) -> value buffer {value:#x}, doc = {doc}");
        assert_eq!(doc, probe * probe);
    }

    // Updates swap value buffers; the old one goes back to the heap.
    let fresh = PersistentAllocator::alloc(&*heap, 100)?;
    dev.write_pod(fresh, &u64::MAX)?;
    dev.persist(fresh, 8)?;
    let old = tree.update(777, fresh).expect("inserted key");
    PersistentAllocator::free(&*heap, old)?;
    println!("updated key 777");

    // Anchor the tree in the heap's root pointer so a restart can find it.
    let root_ptr = heap.nvmptr_of(tree.root_offset())?;
    heap.set_root(root_ptr)?;
    println!("tree root {:#x} anchored at the heap root pointer", tree.root_offset());

    // Allocator-level integrity after the workload.
    for (sub, audit) in heap.audit()? {
        println!(
            "sub-heap {sub}: {} blocks, {} KiB allocated, {} KiB free",
            audit.blocks,
            audit.alloc_bytes >> 10,
            audit.free_bytes >> 10
        );
    }
    println!("kv_store complete");
    Ok(())
}
