//! Per-CPU sub-heaps and NUMA locality (§4.1): run the same allocation
//! churn with per-CPU sub-heaps and with a single shared sub-heap, and
//! compare lock serialisation and cross-socket traffic.
//!
//! ```text
//! cargo run --release --example numa_scaling
//! ```

use std::sync::Arc;

use pmem::{DeviceConfig, NumaTopology, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::micro::{self, MicroConfig};

const THREADS: usize = 8;
const OPS: u64 = 5_000;

fn churn(heap: &PoseidonHeap, label: &str) {
    // Warm up (creates sub-heaps), then measure.
    micro::run(heap, MicroConfig::new(256, THREADS, OPS / 4));
    heap.reset_contention();
    heap.device().reset_stats();
    let result = micro::run(heap, MicroConfig::new(256, THREADS, OPS));

    let profile = heap.contention_profile();
    let max_serial = profile.iter().map(|p| p.held_ns).max().unwrap_or(0);
    let stats = heap.device().stats();
    println!("{label}:");
    println!("  wall throughput            {:>10.3} Mops", result.mops());
    println!("  busiest lock held          {:>10.3} ms", max_serial as f64 / 1e6);
    println!("  total work (thread CPU)    {:>10.3} ms", result.cpu_ns as f64 / 1e6);
    println!(
        "  serial fraction            {:>10.1} %  (Amdahl ceiling ~{:.0}x speedup)",
        100.0 * max_serial as f64 / result.cpu_ns.max(1) as f64,
        result.cpu_ns.max(1) as f64 / max_serial.max(1) as f64
    );
    println!("  remote-socket line traffic {:>10.1} %", 100.0 * stats.remote_fraction());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = NumaTopology::new(2, THREADS);

    // Per-CPU sub-heaps: each thread allocates from its own, placed on
    // its own NUMA node.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(4 << 30).with_topology(topology)));
    let per_cpu = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(THREADS as u16))?;
    churn(&per_cpu, "per-CPU sub-heaps");

    // One shared sub-heap: every thread funnels through one lock and one
    // NUMA node — the design Poseidon exists to avoid.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(4 << 30).with_topology(topology)));
    let single = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1))?;
    churn(&single, "single shared sub-heap");

    println!(
        "\nWith per-CPU sub-heaps the busiest lock holds ~1/{THREADS} of the total work\n\
         (threads never contend) and remote traffic stays near zero; with one shared\n\
         sub-heap the single lock serialises everything and half the traffic crosses\n\
         the socket interconnect — §4.1's argument, measured."
    );
    Ok(())
}
