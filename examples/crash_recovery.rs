//! Crash recovery, live: interrupt allocations at adversarially chosen
//! points, power-cycle the device, reload the heap, and watch the undo
//! and micro logs restore consistency (§4.5, §5.8).
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonError, PoseidonHeap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));

    // Set up a heap with some durable state.
    let keeper = {
        let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2))?;
        let keeper = heap.alloc(256)?;
        let raw = heap.raw_offset(keeper)?;
        dev.write(raw, b"must survive every crash")?;
        dev.persist(raw, 24)?;
        heap.set_root(keeper)?;
        keeper
    };

    // --- Scenario 1: crash in the middle of an allocation -------------
    println!("scenario 1: crash mid-allocation");
    {
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new())?;
        // Fail the device after 25 mutation events — somewhere inside the
        // allocation's undo-logged metadata updates.
        dev.arm_crash_after(25);
        match heap.alloc(4096) {
            Err(PoseidonError::Device(pmem::PmemError::Crashed)) => println!("  power failed mid-alloc"),
            other => println!("  allocation finished before the crash point: {other:?}"),
        }
    }
    // Power-cycle: unflushed cache lines are lost.
    dev.simulate_crash(CrashMode::Strict, 1);

    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new())?;
    let report = heap.recovery_report();
    println!(
        "  recovery: crash detected = {}, sub-heap undo logs replayed = {}",
        report.crash_detected(),
        report.subheap_undos_replayed
    );
    heap.audit()?;
    println!("  structural audit clean");

    // --- Scenario 2: crash before a transaction commits ----------------
    println!("scenario 2: crash before transaction commit");
    {
        let a = heap.tx_alloc(512, false)?;
        let b = heap.tx_alloc(512, false)?;
        println!("  transaction allocated {a} and {b}, never committed");
        // The process "dies" here with the transaction open.
    }
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 2);

    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new())?;
    println!(
        "  recovery reverted {} transactional allocations (no persistent leak)",
        heap.recovery_report().tx_allocations_reverted
    );
    heap.audit()?;

    // --- Scenario 3: adversarial cache eviction ------------------------
    println!("scenario 3: adversarial crash (random unflushed lines persist)");
    for seed in 0..5 {
        dev.arm_crash_after(40 + seed);
        let _ = heap.alloc(64);
        dev.simulate_crash(CrashMode::Adversarial, seed);
        let reloaded = PoseidonHeap::load(dev.clone(), HeapConfig::new())?;
        reloaded.audit()?;
        drop(reloaded);
    }
    println!("  five adversarial crash/recover cycles, audit clean each time");

    // The durable data was never touched by any of this.
    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new())?;
    let root = heap.root()?;
    assert_eq!(root, keeper);
    let mut buf = [0u8; 24];
    dev.read(heap.raw_offset(root)?, &mut buf)?;
    println!("root data after all crashes: {:?}", String::from_utf8_lossy(&buf));
    assert_eq!(&buf, b"must survive every crash");
    println!("crash_recovery complete");
    Ok(())
}
