//! Quickstart: create a Poseidon heap, allocate, persist, anchor at the
//! root pointer, save to a file, and reopen — the full lifecycle of
//! Figure 5's API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256 MiB simulated NVMM device (think: a DAX-mapped pool file).
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20)));

    // poseidon_init: create (or load) the heap.
    let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(4))?;
    println!("created heap {:#x} with {} sub-heaps", heap.heap_id(), heap.layout().num_subheaps());

    // poseidon_alloc + get_rawptr: allocate and write user data.
    let greeting = heap.alloc(64)?;
    let raw = heap.raw_offset(greeting)?;
    dev.write(raw, b"hello, persistent world!")?;
    dev.persist(raw, 24)?;
    println!("allocated {greeting} -> device offset {raw:#x}");

    // poseidon_set_root: make it reachable after a restart.
    heap.set_root(greeting)?;

    // Transactional allocation: all-or-nothing across crashes.
    let a = heap.tx_alloc(128, false)?;
    let b = heap.tx_alloc(128, true)?; // is_end = true commits
    println!("transaction committed: {a} and {b}");
    heap.free(a)?;
    heap.free(b)?;

    // The metadata region is MPK-protected: a stray store (heap overflow,
    // wild pointer) faults instead of corrupting allocation state.
    let attack = dev.write(4096, &[0xFF; 8]);
    println!("stray store into metadata: {:?}", attack.unwrap_err());

    // poseidon_finish + save: persist the pool image to a file.
    let path = std::env::temp_dir().join("poseidon-quickstart.pool");
    heap.close()?;
    dev.save(&path)?;
    println!("pool saved to {}", path.display());

    // Reopen: the root pointer still leads to the greeting.
    let dev2 = Arc::new(PmemDevice::load(&path, DeviceConfig::new(0))?);
    let heap2 = PoseidonHeap::load(dev2.clone(), HeapConfig::new())?;
    let root = heap2.root()?;
    let mut buf = [0u8; 24];
    dev2.read(heap2.raw_offset(root)?, &mut buf)?;
    println!("after reopen, root points at: {}", String::from_utf8_lossy(&buf));
    assert_eq!(&buf, b"hello, persistent world!");

    std::fs::remove_file(&path)?;
    println!("quickstart complete");
    Ok(())
}
